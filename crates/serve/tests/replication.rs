//! Multi-node replication chaos: real daemons on real localhost sockets,
//! driven by the real anti-entropy engine, under partition injection,
//! torn SYNC frames, duplicated deliveries, node crash with a torn WAL
//! tail, and failover traffic — asserting the CRDT contract end to end:
//!
//! * all replicas converge to **byte-identical** stored sketches
//!   (`format::encode` equality) equal to the sequential union, within a
//!   bounded number of anti-entropy rounds;
//! * a black-holed peer walks the healthy → suspect → down ladder and is
//!   then attempted with capped backoff — never a reconnect storm;
//! * protocol violations and garbage from "peers" earn typed errors and
//!   never degrade the store to read-only;
//! * the failover client completes its operations against a cluster with
//!   one node down, inside its retry budget.
//!
//! The real SIGKILL-mid-sync drill (process-level, with salvage on
//! restart) lives in `crates/cli/tests/replication_drill.rs`; here the
//! crash is simulated in-process by stopping a node and tearing its WAL
//! tail before rejoin.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hmh_core::format;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::splitmix::SplitMix64;
use hmh_replica::{sync_with_peer, AntiEntropy, ReplicaOptions};
use hmh_serve::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, MAX_FRAME_LEN,
};
use hmh_serve::{
    serve, Client, ClientError, ClientOptions, ErrCode, FailoverClient, PeerState, ServeOptions,
    ServerHandle,
};
use hmh_store::{RetryPolicy, StoreOptions};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(dir: &TempDir) -> ServerHandle {
    serve(
        &dir.0,
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_depth: 16,
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            store: StoreOptions::no_sleep(),
            ..ServeOptions::default()
        },
    )
    .unwrap()
}

/// Engine options tuned for the suite: fast rounds, one transport
/// attempt per exchange (the engine's own round cadence is the retry),
/// and a small backoff cap so the down-state schedule is observable.
fn engine_opts(seed: u64) -> ReplicaOptions {
    ReplicaOptions {
        interval: Duration::from_millis(25),
        jitter_seed: seed,
        client: ClientOptions {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            retry: RetryPolicy::none(),
            ..ClientOptions::default()
        },
        backoff_cap: 4,
        retry_budget: None,
    }
}

fn client(addr: SocketAddr) -> Client {
    Client::with_options(
        addr,
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default().with_jitter_seed(0xC0FFEE),
            ..ClientOptions::default()
        },
    )
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

/// One raw request/response exchange, bypassing the client's retry loop.
fn exchange(addr: SocketAddr, request: &Request) -> Response {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    conn.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    write_frame(&mut conn, &encode_request(request)).unwrap();
    let body = read_frame(&mut conn, MAX_FRAME_LEN).unwrap().unwrap();
    decode_response(&body).unwrap()
}

/// Every stored sketch on the daemon, as raw encoded bytes — the
/// byte-identical convergence oracle.
fn encoded_state(addr: SocketAddr) -> BTreeMap<String, Vec<u8>> {
    let Response::Names(names) = exchange(addr, &Request::List) else {
        panic!("LIST did not answer names");
    };
    names
        .into_iter()
        .map(|name| {
            let Response::Sketch(bytes) = exchange(addr, &Request::Get { name: name.clone() })
            else {
                panic!("GET {name:?} did not answer a sketch");
            };
            (name, bytes)
        })
        .collect()
}

/// Poll until every replica's stored bytes equal `expect`, or panic at
/// the deadline with a divergence report.
fn await_convergence(
    addrs: &[SocketAddr],
    expect: &BTreeMap<String, Vec<u8>>,
    deadline: Duration,
    tag: &str,
) {
    let start = Instant::now();
    loop {
        let states: Vec<BTreeMap<String, Vec<u8>>> =
            addrs.iter().map(|&a| encoded_state(a)).collect();
        if states.iter().all(|s| s == expect) {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "{tag}: no convergence within {deadline:?}; key sets: {:?}, expected {:?}",
            states.iter().map(|s| s.keys().cloned().collect::<Vec<_>>()).collect::<Vec<_>>(),
            expect.keys().collect::<Vec<_>>()
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// The suite's convergence budget. Rounds tick every ~25–38ms, so this
/// bounds convergence at a few hundred anti-entropy rounds — bounded,
/// not "eventually".
const CONVERGE_DEADLINE: Duration = Duration::from_secs(15);

// ---------------------------------------------------------------------
// Partition-injection proxy
// ---------------------------------------------------------------------

const FORWARD: u8 = 0;
const REFUSE: u8 = 1;
const BLACKHOLE: u8 = 2;
const TORN: u8 = 3;

/// A TCP proxy in front of one replica, with switchable failure modes:
/// FORWARD passes bytes through, REFUSE closes on accept (connection
/// refused-ish), BLACKHOLE accepts and never answers (forces the peer's
/// read deadline), TORN forwards the request but truncates the reply
/// mid-frame. Counts accepts so tests can assert attempt budgets.
struct Proxy {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    accepts: Arc<AtomicU64>,
    upstream: Arc<Mutex<SocketAddr>>,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mode = Arc::new(AtomicU8::new(FORWARD));
        let accepts = Arc::new(AtomicU64::new(0));
        let upstream = Arc::new(Mutex::new(upstream));
        let stop = Arc::new(AtomicBool::new(false));

        let (m, a, u, s) = (mode.clone(), accepts.clone(), upstream.clone(), stop.clone());
        let thread = thread::spawn(move || {
            let mut parked: Vec<TcpStream> = Vec::new();
            while !s.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        a.fetch_add(1, Ordering::SeqCst);
                        match m.load(Ordering::SeqCst) {
                            REFUSE => drop(conn),
                            BLACKHOLE => parked.push(conn),
                            mode => {
                                let target = *u.lock().unwrap();
                                thread::spawn(move || pipe(conn, target, mode == TORN));
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(2)),
                }
                if m.load(Ordering::SeqCst) != BLACKHOLE {
                    parked.clear();
                }
            }
        });
        Self { addr, mode, accepts, upstream, stop, thread: Some(thread) }
    }

    fn set_mode(&self, mode: u8) {
        self.mode.store(mode, Ordering::SeqCst);
    }

    fn set_upstream(&self, upstream: SocketAddr) {
        *self.upstream.lock().unwrap() = upstream;
    }

    fn accepts(&self) -> u64 {
        self.accepts.load(Ordering::SeqCst)
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Bidirectional byte pump; in torn mode the server→client direction
/// forwards at most 9 bytes — enough for a length prefix and a sliver of
/// body, so every non-trivial reply is cut mid-frame.
fn pipe(client: TcpStream, upstream: SocketAddr, torn: bool) {
    let Ok(server) = TcpStream::connect(upstream) else { return };
    for conn in [&client, &server] {
        let _ = conn.set_read_timeout(Some(Duration::from_secs(1)));
        let _ = conn.set_write_timeout(Some(Duration::from_secs(1)));
    }
    let (Ok(mut c_read), Ok(mut s_write)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up = thread::spawn(move || {
        let mut buf = [0u8; 4096];
        while let Ok(n) = c_read.read(&mut buf) {
            if n == 0 || s_write.write_all(&buf[..n]).is_err() {
                break;
            }
        }
        let _ = s_write.shutdown(std::net::Shutdown::Write);
    });
    let mut remaining = if torn { 9usize } else { usize::MAX };
    let mut server = server;
    let mut client = client;
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        match server.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let take = n.min(remaining);
                if client.write_all(&buf[..take]).is_err() {
                    break;
                }
                remaining -= take;
            }
        }
    }
    let _ = client.shutdown(std::net::Shutdown::Both);
    let _ = server.shutdown(std::net::Shutdown::Both);
    let _ = up.join();
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

/// Three nodes, disjoint writes to each plus contended writes to a
/// shared name, full anti-entropy mesh: every replica ends byte-identical
/// to the sequential union, within the round budget, with no slot leak.
#[test]
fn three_nodes_converge_byte_identically_to_the_sequential_union() {
    let dirs = [TempDir::new("mesh-a"), TempDir::new("mesh-b"), TempDir::new("mesh-c")];
    let handles: Vec<ServerHandle> = dirs.iter().map(start).collect();
    let addrs: Vec<SocketAddr> = handles.iter().map(ServerHandle::addr).collect();

    // Disjoint per-node names, plus one name every node writes its own
    // shard of — the contended CRDT case.
    let parts = [sketch(0, 4_000), sketch(4_000, 8_000), sketch(8_000, 12_000)];
    for (i, part) in parts.iter().enumerate() {
        let mut c = client(addrs[i]);
        c.put(&format!("only-{i}"), part).unwrap();
        c.merge("shared", part).unwrap();
    }

    // Sequential union oracle, computed locally.
    let mut union = parts[0].clone();
    union.merge(&parts[1]).unwrap();
    union.merge(&parts[2]).unwrap();
    let mut expect = BTreeMap::new();
    for (i, part) in parts.iter().enumerate() {
        expect.insert(format!("only-{i}"), format::encode(part));
    }
    expect.insert("shared".into(), format::encode(&union));

    // Full mesh: each node pulls from both others.
    let engines: Vec<AntiEntropy> = (0..3)
        .map(|i| {
            let peers: Vec<SocketAddr> = (0..3).filter(|&j| j != i).map(|j| addrs[j]).collect();
            AntiEntropy::spawn(
                addrs[i],
                &peers,
                handles[i].replication(),
                engine_opts(0x5EED_0000 + i as u64),
            )
            .unwrap()
        })
        .collect();

    await_convergence(&addrs, &expect, CONVERGE_DEADLINE, "mesh");

    // Bounded rounds, healthy peers, and the wire-level HEALTH view. A
    // single timed-out round on a loaded machine can leave a peer
    // transiently suspect, so the healthy-and-fresh check polls briefly
    // instead of sampling one instant.
    for (i, handle) in handles.iter().enumerate() {
        let (rounds, peers) = handle.replication().snapshot();
        assert!(rounds >= 1, "node {i} never completed a round");
        assert!(rounds <= 600, "node {i} needed {rounds} rounds — not bounded");
        assert_eq!(peers.len(), 2);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (round, peers) = handle.replication().snapshot();
            if peers.iter().all(|p| p.state == PeerState::Healthy && p.last_sync_age <= 2) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "node {i}: peers not healthy+fresh at round {round}: {peers:?}"
            );
            thread::sleep(Duration::from_millis(20));
        }
        let mut c = client(handle.addr());
        let health = c.health().unwrap();
        assert_eq!(health.peers.len(), 2, "HEALTH must carry the peer list");
        assert!(health.rounds >= 1);
    }

    for engine in engines {
        engine.stop();
    }

    // Only after every engine is gone may slot accounting be asserted:
    // while engines run, their loopback and peer connections are
    // legitimate extra `active` slots, not leaks. Post-stop, each node
    // must drain back to at most our own health connection.
    for (i, handle) in handles.iter().enumerate() {
        let mut c = client(handle.addr());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = c.health().unwrap();
            if health.active <= 1 && health.queue_depth == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "node {i}: slot leak after engines stopped: {health:?}"
            );
            thread::sleep(Duration::from_millis(20));
        }
    }
    for handle in handles {
        handle.join();
    }
}

/// A black-holed peer is marked suspect, then down, and further attempts
/// back off (capped) instead of storming. Healing the partition restores
/// the peer to healthy and converges the pair.
#[test]
fn partition_marks_peer_down_with_bounded_attempts_then_heals() {
    let dir_a = TempDir::new("part-a");
    let dir_b = TempDir::new("part-b");
    let a = start(&dir_a);
    let b = start(&dir_b);
    let proxy = Proxy::start(b.addr());

    client(a.addr()).put("from-a", &sketch(0, 2_000)).unwrap();
    client(b.addr()).put("from-b", &sketch(2_000, 4_000)).unwrap();

    // A pulls from B through the proxy only.
    let engine =
        AntiEntropy::spawn(a.addr(), &[proxy.addr], a.replication(), engine_opts(0xA11CE)).unwrap();

    // Phase 1: partition from the start — walk the ladder to Down.
    proxy.set_mode(BLACKHOLE);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, peers) = a.replication().snapshot();
        if peers.first().is_some_and(|p| p.state == PeerState::Down) {
            break;
        }
        assert!(Instant::now() < deadline, "peer never reached Down: {peers:?}");
        thread::sleep(Duration::from_millis(20));
    }

    // Phase 2: while down, attempts must be rationed. Watch ~24 rounds
    // and require far fewer connection attempts than rounds — with a
    // backoff cap of 4 the engine dials at most every other round on
    // average; a storm would dial every round or worse.
    let (rounds_before, _) = a.replication().snapshot();
    let accepts_before = proxy.accepts();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (rounds, _) = a.replication().snapshot();
        if rounds >= rounds_before + 24 {
            break;
        }
        assert!(Instant::now() < deadline, "rounds stalled during partition");
        thread::sleep(Duration::from_millis(20));
    }
    let attempts = proxy.accepts() - accepts_before;
    assert!(attempts <= 12, "reconnect storm against a down peer: {attempts} dials in 24 rounds");

    // The wire view agrees: HEALTH reports the down peer by address.
    let health = client(a.addr()).health().unwrap();
    let peer = health.peers.first().expect("peer list present");
    assert_eq!(peer.state, PeerState::Down);
    assert_eq!(peer.addr, proxy.addr.to_string());

    // Phase 3: heal. The peer recovers to Healthy and the nodes converge
    // (A pulls B's sketch; B's own copy of A's name arrives when B runs
    // an engine — here we only assert A's pull repaired the divergence).
    proxy.set_mode(FORWARD);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, peers) = a.replication().snapshot();
        if peers.first().is_some_and(|p| p.state == PeerState::Healthy) {
            break;
        }
        assert!(Instant::now() < deadline, "peer never healed");
        thread::sleep(Duration::from_millis(20));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let state = encoded_state(a.addr());
        if state.contains_key("from-b") {
            assert_eq!(state["from-b"], format::encode(&sketch(2_000, 4_000)));
            break;
        }
        assert!(Instant::now() < deadline, "divergence never repaired after heal");
        thread::sleep(Duration::from_millis(20));
    }

    engine.stop();
    proxy.stop();
    a.join();
    b.join();
}

/// Torn SYNC/DIGEST replies (cut mid-frame by the network) fail the
/// round with a typed error — no hang, no panic, no partial write — and
/// the engine converges as soon as frames flow whole again.
#[test]
fn torn_replies_fail_rounds_cleanly_then_converge() {
    let dir_a = TempDir::new("torn-a");
    let dir_b = TempDir::new("torn-b");
    let a = start(&dir_a);
    let b = start(&dir_b);
    let proxy = Proxy::start(b.addr());
    proxy.set_mode(TORN);

    client(b.addr()).put("victim", &sketch(0, 3_000)).unwrap();

    let engine =
        AntiEntropy::spawn(a.addr(), &[proxy.addr], a.replication(), engine_opts(0x70A4)).unwrap();

    // Let several rounds of torn replies happen: the peer degrades but
    // the engine and daemon stay responsive, and nothing partial lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (rounds, peers) = a.replication().snapshot();
        if rounds >= 6 {
            let peer = peers.first().expect("one peer");
            assert_ne!(peer.state, PeerState::Healthy, "torn frames must count as failures");
            break;
        }
        assert!(Instant::now() < deadline, "engine stalled under torn replies");
        thread::sleep(Duration::from_millis(20));
    }
    assert!(encoded_state(a.addr()).is_empty(), "no sketch may materialize from torn frames");

    proxy.set_mode(FORWARD);
    let mut expect = BTreeMap::new();
    expect.insert("victim".to_string(), format::encode(&sketch(0, 3_000)));
    await_convergence(&[a.addr()], &expect, CONVERGE_DEADLINE, "torn-heal");

    engine.stop();
    proxy.stop();
    a.join();
    b.join();
}

/// Crash + rejoin: node B stops mid-cluster, its WAL grows a torn tail
/// (the shape a SIGKILL mid-append leaves), A keeps writing. B reopens
/// from the same directory — salvage quarantines the tear — and rejoins
/// on a new port; both replicas converge byte-identically.
#[test]
fn crash_with_torn_wal_salvages_and_rejoins() {
    let dir_a = TempDir::new("crash-a");
    let dir_b = TempDir::new("crash-b");
    let a = start(&dir_a);
    let b = start(&dir_b);
    let proxy_b = Proxy::start(b.addr()); // A → B through the proxy (survives B's restart)
    let proxy_a = Proxy::start(a.addr()); // B → A likewise, for the rejoin engine

    client(a.addr()).put("pre-crash", &sketch(0, 2_500)).unwrap();
    client(b.addr()).put("b-only", &sketch(2_500, 5_000)).unwrap();

    let engine_a =
        AntiEntropy::spawn(a.addr(), &[proxy_b.addr], a.replication(), engine_opts(0xCA5C_A000))
            .unwrap();
    let engine_b =
        AntiEntropy::spawn(b.addr(), &[proxy_a.addr], b.replication(), engine_opts(0xCA5C_B000))
            .unwrap();

    // Wait until both have pulled each other's pre-crash state.
    let mut expect = BTreeMap::new();
    expect.insert("pre-crash".to_string(), format::encode(&sketch(0, 2_500)));
    expect.insert("b-only".to_string(), format::encode(&sketch(2_500, 5_000)));
    await_convergence(&[a.addr(), b.addr()], &expect, CONVERGE_DEADLINE, "pre-crash");

    // "Crash" B mid-cluster: engine gone, daemon gone, and the WAL gets
    // the torn tail a SIGKILL mid-append leaves behind.
    engine_b.stop();
    proxy_b.set_mode(REFUSE);
    b.join();
    let wal = dir_b.0.join(hmh_store::WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x13]);
    std::fs::write(&wal, bytes).unwrap();

    // A keeps accepting writes while B is dead.
    client(a.addr()).put("during-outage", &sketch(5_000, 7_500)).unwrap();
    expect.insert("during-outage".to_string(), format::encode(&sketch(5_000, 7_500)));

    // B restarts from the same directory (salvage runs at open), rejoins
    // through the proxies on its new port.
    let b2 = start(&dir_b);
    proxy_b.set_upstream(b2.addr());
    proxy_b.set_mode(FORWARD);
    let engine_b2 =
        AntiEntropy::spawn(b2.addr(), &[proxy_a.addr], b2.replication(), engine_opts(0xCA5C_B200))
            .unwrap();

    await_convergence(&[a.addr(), b2.addr()], &expect, CONVERGE_DEADLINE, "rejoin");

    // The salvaged rejoiner serves reads and writes — not read-only.
    let health = client(b2.addr()).health().unwrap();
    assert!(!health.read_only, "salvage must not leave the rejoiner read-only");

    engine_a.stop();
    engine_b2.stop();
    proxy_a.stop();
    proxy_b.stop();
    a.join();
    b2.join();
}

/// CRDT convergence at the network layer (CASES=64): deliver the same
/// set of SYNC-style merges in seeded random orders, with duplicated and
/// initially-dropped (redelivered) parts, through the daemon's real
/// MERGE path. Every schedule must land on the same encoded bytes as the
/// sequential union — `merge_algebra.rs`'s laws, proven over the wire.
#[test]
fn network_merge_schedules_with_duplication_and_loss_converge() {
    const CASES: u64 = 64;
    let dir = TempDir::new("crdt");
    let handle = start(&dir);
    let mut c = client(handle.addr());

    // Six shards with overlaps; the sequential union is the oracle.
    let parts: Vec<Vec<u8>> =
        (0..6).map(|i| format::encode(&sketch(i * 700, i * 700 + 1_400))).collect();
    let mut union = sketch(0, 1_400);
    for part in &parts[1..] {
        union.merge(&format::decode(part).unwrap()).unwrap();
    }
    let expect = format::encode(&union);

    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC4D7_0000 ^ case);
        // Build a delivery schedule: every part at least once, ~half the
        // parts duplicated, and "lost" deliveries modeled as drops that
        // are redelivered at the tail (a loss that is never repaired is
        // indistinguishable from a partition that never heals — what
        // converges is the repaired schedule).
        let mut schedule: Vec<usize> = (0..parts.len()).collect();
        for i in 0..parts.len() {
            if rng.next_u64().is_multiple_of(2) {
                schedule.push(i); // duplicated delivery
            }
        }
        // Fisher–Yates with the seeded stream.
        for i in (1..schedule.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            schedule.swap(i, j);
        }
        // Drop a prefix ("lost"), then redeliver it after the rest.
        let dropped = (rng.next_u64() % 3) as usize;
        let (lost, delivered) = schedule.split_at(dropped.min(schedule.len()));
        let final_order: Vec<usize> = delivered.iter().chain(lost).copied().collect();

        let name = format!("case-{case}");
        for &part in &final_order {
            c.merge_raw(&name, &parts[part]).unwrap();
        }
        let Response::Sketch(bytes) = exchange(handle.addr(), &Request::Get { name: name.clone() })
        else {
            panic!("case {case}: sketch missing");
        };
        assert_eq!(
            bytes, expect,
            "case {case}: schedule {final_order:?} diverged from the sequential union"
        );
    }

    handle.join();
}

/// Satellite 6 at the server: hostile replication frames — lying DIGEST
/// cursors, oversized SYNC name counts, unknown ops — get typed errors,
/// and the store never degrades to read-only because of them.
#[test]
fn hostile_replication_frames_get_typed_errors_and_never_degrade_the_store() {
    let dir = TempDir::new("hostile");
    let handle = start(&dir);
    client(handle.addr()).put("keep", &sketch(0, 1_000)).unwrap();

    let send_raw = |body: &[u8]| -> Option<Response> {
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        conn.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
        write_frame(&mut conn, body).unwrap();
        match read_frame(&mut conn, MAX_FRAME_LEN) {
            Ok(Some(frame)) => Some(decode_response(&frame).unwrap()),
            _ => None,
        }
    };

    // DIGEST whose cursor length field lies beyond the name cap.
    let mut b = vec![1u8, 10u8]; // PROTO_VERSION, op::DIGEST
    b.extend_from_slice(&u16::MAX.to_le_bytes());
    match send_raw(&b) {
        Some(Response::Err { code, .. }) => assert_eq!(code, ErrCode::TooLarge),
        other => panic!("lying DIGEST cursor: {other:?}"),
    }

    // SYNC claiming more names than the protocol cap.
    let mut b = vec![1u8, 11u8]; // PROTO_VERSION, op::SYNC
    b.extend_from_slice(&2_000u16.to_le_bytes());
    match send_raw(&b) {
        Some(Response::Err { code, .. }) => assert_eq!(code, ErrCode::TooLarge),
        other => panic!("oversized SYNC: {other:?}"),
    }

    // SYNC whose name count is backed by no bytes.
    let mut b = vec![1u8, 11u8];
    b.extend_from_slice(&5u16.to_le_bytes());
    match send_raw(&b) {
        Some(Response::Err { code, .. }) => assert_eq!(code, ErrCode::BadFrame),
        other => panic!("truncated SYNC: {other:?}"),
    }

    // Unknown opcode from a confused (or hostile) peer.
    match send_raw(&[1u8, 0xEE]) {
        Some(Response::Err { code, .. }) => assert_eq!(code, ErrCode::UnknownOp),
        other => panic!("unknown op: {other:?}"),
    }

    // The store took no damage: not read-only, still writable, data intact.
    let mut c = client(handle.addr());
    let health = c.health().unwrap();
    assert!(!health.read_only, "hostile frames must never trip read-only: {health:?}");
    c.put("still-writable", &sketch(0, 100)).unwrap();
    assert_eq!(c.get("keep").unwrap(), sketch(0, 1_000));

    handle.join();
}

/// Duplicated sync passes are harmless: running the same pairwise sync
/// repeatedly (the duplicated-delivery failure mode at the round level)
/// changes nothing after the first — merge idempotence over the wire.
#[test]
fn repeated_sync_passes_are_idempotent() {
    let dir_a = TempDir::new("idem-a");
    let dir_b = TempDir::new("idem-b");
    let a = start(&dir_a);
    let b = start(&dir_b);

    client(b.addr()).put("x", &sketch(0, 2_000)).unwrap();
    client(a.addr()).put("x", &sketch(1_000, 3_000)).unwrap();

    let opts = engine_opts(0x1DE0);
    let repaired = sync_with_peer(a.addr(), b.addr(), &opts).unwrap();
    assert_eq!(repaired, 1, "one divergent name");
    let after_first = encoded_state(a.addr());

    for pass in 0..3 {
        let again = sync_with_peer(a.addr(), b.addr(), &opts).unwrap();
        // B's copy still differs from A's merged one (B never pulled), so
        // A re-pulls and re-merges — and the merge must change nothing.
        assert!(again <= 1, "pass {pass}: at most the same single name");
        assert_eq!(encoded_state(a.addr()), after_first, "pass {pass}: state drifted");
    }

    let mut expect_x = sketch(0, 2_000);
    expect_x.merge(&sketch(1_000, 3_000)).unwrap();
    assert_eq!(after_first["x"], format::encode(&expect_x), "union of both writes");

    a.join();
    b.join();
}

/// The failover client completes PUT/MERGE/CARD/JACCARD against a
/// cluster with one replica down, within its retry budget, and final
/// errors are not retried across replicas.
#[test]
fn failover_client_completes_operations_with_a_node_down() {
    let dir_a = TempDir::new("fo-a");
    let dir_b = TempDir::new("fo-b");
    let a = start(&dir_a);
    let b = start(&dir_b);
    let addr_a = a.addr();
    let addr_b = b.addr();

    // Kill A outright; its address now refuses connections.
    a.join();

    let opts = ClientOptions {
        connect_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(800),
        write_timeout: Duration::from_millis(800),
        retry: RetryPolicy::none(), // rotation IS the retry here
        ..ClientOptions::default()
    };
    // Dead replica listed first: every op must rotate past it.
    let mut fc = FailoverClient::with_options(&[addr_a, addr_b], opts, 3);
    assert_eq!(fc.current_addr(), addr_a);

    fc.put("events", &sketch(0, 5_000)).unwrap();
    fc.merge("events", &sketch(2_500, 7_500)).unwrap();
    fc.put("other", &sketch(0, 2_500)).unwrap();
    let card = fc.card("events").unwrap();
    assert!((card / 7_500.0 - 1.0).abs() < 0.15, "union survived failover: {card}");
    let j = fc.jaccard("other", "events").unwrap();
    assert!(j > 0.0 && j < 1.0, "jaccard answered: {j}");

    // After the first rotation the client stays on the live replica.
    assert_eq!(fc.current_addr(), addr_b);

    // Server-final answers do not burn the budget rotating: a missing
    // name is NotFound immediately, not after cycling the ring.
    match fc.card("missing") {
        Err(ClientError::NotFound(name)) => assert_eq!(name, "missing"),
        other => panic!("expected NotFound, got {other:?}"),
    }
    assert_eq!(fc.current_addr(), addr_b, "NotFound must not rotate");

    // With every replica down, the budget bounds the attempt count and
    // the exhaustion is the typed all-down error, not a raw transport
    // error from whichever replica happened to be tried last.
    fc.shutdown().unwrap();
    b.join();
    let err = fc.card("events").unwrap_err();
    match err {
        ClientError::AllReplicasDown { attempts, last_errors } => {
            assert_eq!(attempts, 3, "the configured budget is reported");
            assert_eq!(last_errors.len(), 3, "one error recorded per attempt");
        }
        other => panic!("expected AllReplicasDown, got {other:?}"),
    }
}

/// The all-down path is typed from the first call: a failover client
/// whose every replica refuses connections reports `AllReplicasDown`
/// with per-attempt detail (address plus cause) rather than hanging,
/// panicking, or surfacing a single replica's raw error.
#[test]
fn failover_client_types_the_all_down_path() {
    // Bind-then-drop: both addresses were just live, so nothing else can
    // be listening there, and connects fail fast with refused.
    let addr_a = reserve_addr();
    let addr_b = reserve_addr();

    let opts = ClientOptions {
        connect_timeout: Duration::from_millis(300),
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        retry: RetryPolicy::none(),
        ..ClientOptions::default()
    };
    let mut fc = FailoverClient::with_options(&[addr_a, addr_b], opts, 4);
    let err = fc.put("orphan", &sketch(0, 100)).unwrap_err();
    match &err {
        ClientError::AllReplicasDown { attempts, last_errors } => {
            assert_eq!(*attempts, 4);
            assert_eq!(last_errors.len(), 4);
            // Rotation order: a, b, a, b — each entry names its replica.
            assert!(last_errors[0].starts_with(&addr_a.to_string()), "{last_errors:?}");
            assert!(last_errors[1].starts_with(&addr_b.to_string()), "{last_errors:?}");
            assert!(
                last_errors.iter().all(|e| e.contains("transport")),
                "each attempt records its cause: {last_errors:?}"
            );
        }
        other => panic!("expected AllReplicasDown, got {other:?}"),
    }
    // The Display form summarizes without dumping every attempt.
    assert!(err.to_string().contains("all replicas down after 4 attempts"), "{err}");
    // The first call's four failures (two consecutive per replica, then
    // one more each on call two would be needed — but the breaker opens
    // at three) mean repeated calls soon refuse from memory: still
    // typed, still instant, zero further dials.
    let started = std::time::Instant::now();
    let again = fc.put("orphan", &sketch(0, 100)).unwrap_err();
    assert!(
        matches!(
            again,
            ClientError::AllReplicasDown { .. } | ClientError::BreakerOpen { replicas: 2 }
        ),
        "repeat all-down call must stay typed, got {again:?}"
    );
    let err = loop {
        match fc.put("orphan", &sketch(0, 100)).unwrap_err() {
            e @ ClientError::BreakerOpen { .. } => break e,
            ClientError::AllReplicasDown { .. } if started.elapsed() < Duration::from_secs(5) => {}
            other => panic!("expected breaker escalation, got {other:?}"),
        }
    };
    assert!(err.to_string().contains("breaker"), "{err}");
}

/// A live address that nothing listens on: bind, read the port, drop.
fn reserve_addr() -> std::net::SocketAddr {
    std::net::TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap()
}

/// Flip one payload byte of **every** record holding `name` across both
/// store files — so no valid on-disk copy survives and the next open
/// must fence the name rather than fall back to an older record.
fn rot_every_record(dir: &TempDir, name: &str) {
    let name_bytes = name.as_bytes();
    let mut hits = 0usize;
    for file in [hmh_store::WAL_FILE, hmh_store::SNAPSHOT_FILE] {
        let path = dir.0.join(file);
        let Ok(mut bytes) = std::fs::read(&path) else { continue };
        // A record's name field sits 6 bytes after the header start
        // (magic 4, kind 1, name_len u16 at offset 5 — the name_len's
        // second byte is at i-5); match name bytes confirmed by their
        // length field, then flip a byte a little way into the payload.
        let mut changed = false;
        for i in 6..bytes.len().saturating_sub(name_bytes.len()) {
            if &bytes[i..i + name_bytes.len()] != name_bytes {
                continue;
            }
            let len = u16::from_le_bytes([bytes[i - 6], bytes[i - 5]]);
            if usize::from(len) != name_bytes.len() {
                continue;
            }
            bytes[i + name_bytes.len() + 8] ^= 0x01;
            changed = true;
            hits += 1;
        }
        if changed {
            std::fs::write(&path, &bytes).unwrap();
        }
    }
    assert!(hits > 0, "no record for {name:?} found to rot in {:?}", dir.0);
}

/// The at-rest corruption drill, end to end: one replica goes down, the
/// committed records under it rot, and it restarts. Open-time salvage
/// fences the rotted names; every interleaved read during the outage
/// and the repair window sees either the typed fence or the correct
/// bytes — never a torn payload; the engine's read-repair pulls valid
/// copies from the healthy peers through loopback MERGE and releases
/// the fences; the mesh reconverges byte-identically; and a triggered
/// second scrub pass finds nothing new.
#[test]
fn bit_rot_on_one_replica_is_fenced_read_repaired_and_reconverges() {
    let dirs = [TempDir::new("rot-a"), TempDir::new("rot-b"), TempDir::new("rot-c")];
    let mut handles: Vec<ServerHandle> = dirs.iter().map(start).collect();
    let addrs: Vec<SocketAddr> = handles.iter().map(ServerHandle::addr).collect();
    // B will restart on a new port; its peers reach it through a proxy
    // whose upstream can be repointed.
    let proxy_b = Proxy::start(addrs[1]);

    let parts = [sketch(0, 3_000), sketch(3_000, 6_000), sketch(6_000, 9_000)];
    let mut expect = BTreeMap::new();
    for (i, part) in parts.iter().enumerate() {
        client(addrs[i]).put(&format!("only-{i}"), part).unwrap();
        expect.insert(format!("only-{i}"), format::encode(part));
    }

    let peers_of = |i: usize| -> Vec<SocketAddr> {
        (0..3)
            .filter(|&j| j != i)
            .map(|j| if j == 1 { proxy_b.addr } else { addrs[j] })
            .collect()
    };
    let engine_a =
        AntiEntropy::spawn(addrs[0], &peers_of(0), handles[0].replication(), engine_opts(0xB17A))
            .unwrap();
    let engine_b =
        AntiEntropy::spawn(addrs[1], &peers_of(1), handles[1].replication(), engine_opts(0xB17B))
            .unwrap();
    let engine_c =
        AntiEntropy::spawn(addrs[2], &peers_of(2), handles[2].replication(), engine_opts(0xB17C))
            .unwrap();
    await_convergence(&addrs, &expect, CONVERGE_DEADLINE, "rot-seed");

    // B goes down; while it is dead, its copies of two replicated names
    // rot on disk — every record of each, so no valid copy survives.
    engine_b.stop();
    proxy_b.set_mode(REFUSE);
    let [_, dir_b, _] = &dirs;
    handles.remove(1).join();
    rot_every_record(dir_b, "only-0");
    rot_every_record(dir_b, "only-2");

    // Restart: open-time salvage must fence both names before any
    // engine runs — the fence is the open's work, not the repair's.
    let b2 = start(dir_b);
    proxy_b.set_upstream(b2.addr());
    proxy_b.set_mode(FORWARD);
    for name in ["only-0", "only-2"] {
        match exchange(b2.addr(), &Request::Get { name: name.into() }) {
            Response::Err { code: ErrCode::CorruptQuarantined, .. } => {}
            other => panic!("pre-repair GET {name}: expected typed fence, got {other:?}"),
        }
    }
    let health = client(b2.addr()).health().unwrap();
    assert!(health.corrupt_found >= 2, "both flips counted: {health:?}");
    assert_eq!(health.scrub_quarantined, 2, "both names fenced: {health:?}");
    // The untouched name still serves, bit-identical.
    match exchange(b2.addr(), &Request::Get { name: "only-1".into() }) {
        Response::Sketch(bytes) => assert_eq!(bytes, expect["only-1"]),
        other => panic!("undamaged record must keep serving: {other:?}"),
    }

    // Read-repair: B's new engine fetches its own quarantine over
    // loopback, pulls valid copies from the healthy peers, and releases
    // the fences through MERGE. Interleaved GETs pin the containment
    // contract at every observation point: the typed fence or the
    // correct bytes, never a torn payload.
    let engine_b2 =
        AntiEntropy::spawn(b2.addr(), &peers_of(1), b2.replication(), engine_opts(0xB17B2))
            .unwrap();
    for name in ["only-0", "only-2"] {
        let deadline = Instant::now() + CONVERGE_DEADLINE;
        loop {
            match exchange(b2.addr(), &Request::Get { name: name.into() }) {
                Response::Err { code: ErrCode::CorruptQuarantined, .. } => {}
                Response::Sketch(bytes) => {
                    assert_eq!(bytes, expect[name], "{name}: repaired copy must be bit-identical");
                    break;
                }
                other => panic!("mid-repair GET {name}: {other:?}"),
            }
            assert!(Instant::now() < deadline, "{name}: fence never released");
            thread::sleep(Duration::from_millis(20));
        }
    }
    let addrs2 = [addrs[0], b2.addr(), addrs[2]];
    await_convergence(&addrs2, &expect, CONVERGE_DEADLINE, "rot-repair");

    // The repaired node accounts for the damage and holds no fences.
    let health = client(b2.addr()).health().unwrap();
    assert!(health.corrupt_found >= 2, "{health:?}");
    assert_eq!(health.scrub_quarantined, 0, "fences released: {health:?}");

    // A full triggered pass over the repaired disk is clean, and a
    // second one finds nothing new: corruption was healed, not hidden.
    let mut c = client(b2.addr());
    let first = c.scrub(true, "").unwrap();
    assert!(first.names.is_empty() && first.quarantined == 0, "{first:?}");
    assert_ne!(first.last_scrub_age_ms, u64::MAX, "a pass completed");
    let second = c.scrub(true, "").unwrap();
    assert!(second.rounds > first.rounds, "second trigger ran a pass: {second:?}");
    assert_eq!(second.corrupt_found, first.corrupt_found, "no new findings: {second:?}");

    for engine in [engine_a, engine_b2, engine_c] {
        engine.stop();
    }
    proxy_b.stop();
    b2.join();
    for handle in handles {
        handle.join();
    }
}
