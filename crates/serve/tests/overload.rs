//! Deadline propagation under queueing: a request whose `budget_ms`
//! is already spent when a worker finally dequeues it must come back
//! as a typed EXPIRED — the server refuses the dead work instead of
//! doing it — while v1 requests (no budget on the wire) are served no
//! matter how long they waited.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hmh_serve::{serve, Client, ClientError, ClientOptions, ServeOptions};
use hmh_store::{RetryPolicy, StoreOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("hmh-overload-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp store dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One worker and a short server-side read deadline: a slow-loris
/// connection pins the whole service for exactly `read_timeout`,
/// which is the queue delay every concurrently arriving request sees.
const PIN: Duration = Duration::from_millis(700);

fn start(dir: &TempDir) -> hmh_serve::ServerHandle {
    serve(
        &dir.0,
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            read_timeout: PIN,
            store: StoreOptions::no_sleep(),
            ..ServeOptions::default()
        },
    )
    .expect("start daemon")
}

fn sketch() -> hmh_core::HyperMinHash {
    let params = hmh_core::HmhParams::new(10, 6, 10).expect("params");
    hmh_core::HyperMinHash::from_items(params, 0u64..512)
}

/// Pin the single worker: connect and send one length prefix but no
/// body, so the worker sits in `read_frame` until its read deadline.
/// (A zero-byte connect can be raced out by the worker's dequeue; a
/// half-frame cannot.)
fn slow_loris(addr: std::net::SocketAddr) -> TcpStream {
    let mut conn = TcpStream::connect(addr).expect("loris connect");
    conn.write_all(&64u32.to_le_bytes()).expect("loris half-frame");
    conn.flush().expect("loris flush");
    conn
}

#[test]
fn budgeted_request_queued_past_its_deadline_expires_typed() {
    let dir = TempDir::new("expire");
    let node = start(&dir);

    // Preload while the worker is idle.
    let mut setup = Client::connect(node.addr());
    setup.put("ovl/x", &sketch()).expect("preload");
    drop(setup);

    let mut victim = Client::with_options(
        node.addr(),
        ClientOptions {
            retry: RetryPolicy::none(),
            op_budget: Some(Duration::from_millis(100)),
            ..ClientOptions::default()
        },
    );

    let loris = slow_loris(node.addr());
    // Give the worker time to dequeue the loris before the victim
    // arrives; the victim then queues behind it for ~PIN.
    std::thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    match victim.card("ovl/x") {
        Err(ClientError::Expired) => {}
        other => panic!("queued-past-budget CARD should expire typed, got {other:?}"),
    }
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(150),
        "EXPIRED after {waited:?}: the server answered before the queue drained, \
         so the expiry did not happen at dequeue"
    );
    assert!(waited < Duration::from_secs(5), "EXPIRED took {waited:?}; not a refusal, a hang");
    drop(loris);

    // Expiry is a keep-alive reply, not a hangup: the same connection
    // serves the next (freshly budgeted) request, because budget burn
    // restarts at frame receipt for later requests on a connection.
    let estimate = victim.card("ovl/x").expect("post-expiry request on the same connection");
    assert!(estimate > 0.0);

    // The refusal is visible in HEALTH.
    let mut probe = Client::connect(node.addr());
    let health = probe.health().expect("health");
    assert!(health.expired >= 1, "expired counter did not move: {health:?}");
    drop(probe);

    node.shutdown();
    node.join();
}

#[test]
fn v1_request_with_no_budget_is_served_no_matter_how_long_it_queued() {
    let dir = TempDir::new("v1-waits");
    let node = start(&dir);

    let mut setup = Client::connect(node.addr());
    setup.put("ovl/y", &sketch()).expect("preload");
    drop(setup);

    // No op_budget: the client emits byte-identical v1 frames, and the
    // server has no deadline to enforce.
    let mut patient = Client::with_options(
        node.addr(),
        ClientOptions { retry: RetryPolicy::none(), ..ClientOptions::default() },
    );

    let loris = slow_loris(node.addr());
    std::thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let estimate = patient.card("ovl/y").expect("v1 request must be served after the queue wait");
    assert!(estimate > 0.0);
    assert!(
        started.elapsed() >= Duration::from_millis(150),
        "the request did not actually queue behind the loris"
    );
    drop(loris);

    let mut probe = Client::connect(node.addr());
    let health = probe.health().expect("health");
    assert_eq!(health.expired, 0, "a v1 request must never be expired");
    drop(probe);

    node.shutdown();
    node.join();
}
