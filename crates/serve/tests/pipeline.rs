//! Pipeline conformance and chaos suite: the in-order reply contract
//! under adversarial framing.
//!
//! A pipelined HMS1 connection has no correlation tags — *order is the
//! contract*. These tests pin it from the socket up:
//!
//! * replies come back in receipt order under seeded interleavings of
//!   the request byte stream (split points, stalls, coalesced writes);
//! * a disconnect with frames in flight leaks no worker slot and never
//!   wedges the daemon;
//! * the client's depth cap is a typed refusal before any bytes move,
//!   while a raw peer writing past the server's batch cap is simply
//!   served in multiple batches — bounded memory, not a hang;
//! * v1 (no budget) and v2 (budgeted) frames mix freely in one window;
//! * a slow-loris stall *mid-pipeline* still gets the completed frames
//!   answered, then costs only the read deadline;
//! * a deadline that expires mid-window burns exactly its own frame —
//!   neighbours in the same batch are served;
//! * a pipelined stream leaves byte-identical replies and store state
//!   to the same stream issued serially (the property the whole
//!   optimisation must preserve).
//!
//! Everything is seeded (SplitMix64): a failing schedule replays
//! bit-for-bit.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use hmh_core::format;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::splitmix::SplitMix64;
use hmh_serve::proto::{
    decode_response, encode_request, encode_request_budget, read_frame, write_frame, Request,
    Response, MAX_FRAME_LEN, MAX_PIPELINE_DEPTH,
};
use hmh_serve::{serve, Client, ClientError, ClientOptions, ServeOptions, ServerHandle};
use hmh_store::{RetryPolicy, StoreOptions};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hmh-pipeline-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn opts(workers: usize, queue_depth: usize) -> ServeOptions {
    ServeOptions {
        workers,
        queue_depth,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        store: StoreOptions::no_sleep(),
        ..ServeOptions::default()
    }
}

fn start(dir: &TempDir, workers: usize, queue_depth: usize) -> ServerHandle {
    serve(&dir.0, "127.0.0.1:0", opts(workers, queue_depth)).unwrap()
}

fn client(handle: &ServerHandle) -> Client {
    Client::with_options(
        handle.addr(),
        ClientOptions {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default().with_jitter_seed(0xC0FFEE),
            ..ClientOptions::default()
        },
    )
}

fn sketch(lo: u64, hi: u64) -> HyperMinHash {
    let params = HmhParams::new(8, 6, 6).unwrap();
    HyperMinHash::from_items(params, lo..hi)
}

/// Post-chaos invariant: the daemon still serves a healthy client and
/// its connection slots have drained.
fn assert_still_healthy(handle: &ServerHandle, tag: &str) {
    let mut c = client(handle);
    let name = format!("healthy-{tag}");
    let s = sketch(0, 2_000);
    c.put(&name, &s).unwrap_or_else(|e| panic!("{tag}: put after chaos: {e}"));
    assert_eq!(c.get(&name).unwrap(), s, "{tag}: round trip intact after chaos");
    let health = c.health().unwrap_or_else(|e| panic!("{tag}: health after chaos: {e}"));
    assert!(health.active <= 1, "{tag}: connection slots leaked: {health:?}");
    assert_eq!(health.queue_depth, 0, "{tag}: queue not drained: {health:?}");
}

fn raw(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    conn.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    conn
}

/// Frame a list of request bodies into one contiguous byte stream.
fn framed_stream(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for body in bodies {
        write_frame(&mut out, body).unwrap();
    }
    out
}

/// Read exactly `n` reply frames, decoded.
fn read_replies(conn: &mut TcpStream, n: usize) -> Vec<Response> {
    (0..n)
        .map(|i| {
            let body = read_frame(conn, MAX_FRAME_LEN)
                .unwrap_or_else(|e| panic!("reply {i} of {n}: {e}"))
                .unwrap_or_else(|| panic!("EOF before reply {i} of {n}"));
            decode_response(&body).expect("server replies are always decodable")
        })
        .collect()
}

/// What reply the i-th request of a conformance case must earn. The
/// payload (a sketch's exact encoded bytes, a cardinality computed
/// serially beforehand) makes a reordered reply stream unmistakable.
enum Expect {
    Ok,
    Sketch(Vec<u8>),
    Value(f64),
}

#[test]
fn replies_stay_in_receipt_order_under_seeded_interleavings() {
    const CASES: u64 = 64;
    let dir = TempDir::new("interleave");
    let handle = start(&dir, 2, 8);

    // Preload distinguishable sketches; cache their exact encodings and
    // serially-computed cardinalities as the order oracle.
    let mut setup = client(&handle);
    let names: Vec<String> = (0..8).map(|i| format!("pre-{i}")).collect();
    let mut encodings = Vec::new();
    let mut cards = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let s = sketch(i as u64 * 10_000, i as u64 * 10_000 + 500 * (i as u64 + 1));
        setup.put(name, &s).unwrap();
        encodings.push(format::encode(&s));
        cards.push(setup.card(name).unwrap());
    }
    drop(setup);

    let put_payload = format::encode(&sketch(0, 64));
    let mut rng = SplitMix64::new(0x5EED_11E5);
    for case in 0..CASES {
        let depth = 1 + (rng.next_u64() as usize) % MAX_PIPELINE_DEPTH;
        let mut bodies = Vec::with_capacity(depth);
        let mut expected = Vec::with_capacity(depth);
        for j in 0..depth {
            let k = (rng.next_u64() as usize) % names.len();
            match rng.next_u64() % 3 {
                0 => {
                    bodies.push(encode_request(&Request::Get { name: names[k].clone() }));
                    expected.push(Expect::Sketch(encodings[k].clone()));
                }
                1 => {
                    bodies.push(encode_request(&Request::Card { name: names[k].clone() }));
                    expected.push(Expect::Value(cards[k]));
                }
                _ => {
                    bodies.push(encode_request(&Request::Put {
                        name: format!("case{case}-{j}"),
                        sketch: put_payload.clone(),
                    }));
                    expected.push(Expect::Ok);
                }
            }
        }

        // Write the stream in seeded chunks with occasional stalls: the
        // server sees the window arrive in every shape — one syscall,
        // byte dribbles, stalls that split it across batches.
        let stream = framed_stream(&bodies);
        let mut conn = raw(&handle);
        let mut off = 0;
        while off < stream.len() {
            let chunk = 1 + (rng.next_u64() as usize) % (stream.len() - off);
            conn.write_all(&stream[off..off + chunk]).unwrap();
            off += chunk;
            if rng.next_u64().is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(rng.next_u64() % 5));
            }
        }

        let replies = read_replies(&mut conn, depth);
        for (i, (reply, want)) in replies.iter().zip(&expected).enumerate() {
            match (reply, want) {
                (Response::Ok, Expect::Ok) => {}
                (Response::Sketch(got), Expect::Sketch(want)) if got == want => {}
                (Response::Value(got), Expect::Value(want)) if got == want => {}
                (got, _) => panic!("case {case} slot {i}: out-of-order or wrong reply: {got:?}"),
            }
        }
    }
    assert_still_healthy(&handle, "interleave");
    handle.join();
}

#[test]
fn disconnect_with_frames_in_flight_leaks_no_slot() {
    let dir = TempDir::new("inflight-drop");
    let handle = start(&dir, 2, 8);
    let mut rng = SplitMix64::new(0x00D4_0D40);

    let mut setup = client(&handle);
    setup.put("inflight", &sketch(0, 1_000)).unwrap();
    drop(setup);

    let body = encode_request(&Request::Card { name: "inflight".into() });
    for round in 0..24 {
        let k = 1 + (rng.next_u64() as usize) % 8;
        let stream = framed_stream(&vec![body.clone(); k]);
        let mut conn = raw(&handle);
        if round % 2 == 0 {
            // k complete frames plus a torn (k+1)-th, then a hard drop:
            // the tail poisons nothing that matters — the peer is gone.
            conn.write_all(&stream).unwrap();
            let torn = &stream[..(rng.next_u64() as usize) % stream.len().clamp(1, 5)];
            let _ = conn.write_all(torn);
        } else {
            // k frames in flight, zero replies read, immediate drop: the
            // server writes into a dead socket and must shrug it off.
            conn.write_all(&stream).unwrap();
        }
        drop(conn);
    }
    // The daemon answered (or abandoned) every schedule without leaking
    // a slot — the healthy check is the leak detector.
    assert_still_healthy(&handle, "inflight-drop");
    handle.join();
}

#[test]
fn client_depth_cap_is_a_typed_refusal_and_raw_overdepth_never_hangs() {
    let dir = TempDir::new("depth-cap");
    let handle = start(&dir, 2, 8);

    let mut setup = client(&handle);
    setup.put("cap", &sketch(0, 500)).unwrap();
    drop(setup);

    // Client side: one request over the cap is refused before any bytes
    // move — no partial window ever reaches the wire.
    let requests: Vec<Request> =
        (0..=MAX_PIPELINE_DEPTH).map(|_| Request::Card { name: "cap".into() }).collect();
    let mut c = client(&handle);
    match c.pipeline(&requests) {
        Err(ClientError::PipelineOverflow { submitted, max }) => {
            assert_eq!(submitted, MAX_PIPELINE_DEPTH + 1);
            assert_eq!(max, MAX_PIPELINE_DEPTH);
        }
        other => panic!("expected PipelineOverflow, got {other:?}"),
    }
    // The refusal is local: the connection still works at the cap.
    let replies = c.pipeline(&requests[..MAX_PIPELINE_DEPTH]).unwrap();
    assert_eq!(replies.len(), MAX_PIPELINE_DEPTH);
    assert!(replies.iter().all(|r| matches!(r, Response::Value(_))));
    drop(c);

    // Raw side: a peer writing 2× the depth cap in one burst is not an
    // error — the server serves it in multiple bounded batches. Every
    // reply arrives, in order, and nothing hangs.
    let body = encode_request(&Request::Card { name: "cap".into() });
    let stream = framed_stream(&vec![body; 2 * MAX_PIPELINE_DEPTH]);
    let mut conn = raw(&handle);
    conn.write_all(&stream).unwrap();
    let replies = read_replies(&mut conn, 2 * MAX_PIPELINE_DEPTH);
    assert!(replies.iter().all(|r| matches!(r, Response::Value(_))));
    drop(conn);

    assert_still_healthy(&handle, "depth-cap");
    handle.join();
}

#[test]
fn v1_and_v2_frames_mix_freely_in_one_window() {
    let dir = TempDir::new("mixed-versions");
    let handle = start(&dir, 2, 8);

    let mut setup = client(&handle);
    setup.put("mixed", &sketch(0, 1_000)).unwrap();
    drop(setup);

    // Alternate unbudgeted v1 frames with generously-budgeted v2 ones:
    // version is per-frame state, not per-connection.
    let card = Request::Card { name: "mixed".into() };
    let put = Request::Put { name: "mixed-2".into(), sketch: format::encode(&sketch(0, 64)) };
    let bodies = vec![
        encode_request(&card),
        encode_request_budget(&card, 60_000),
        encode_request(&put),
        encode_request_budget(&card, 60_000),
        encode_request_budget(&put, 60_000),
        encode_request(&card),
    ];
    let mut conn = raw(&handle);
    conn.write_all(&framed_stream(&bodies)).unwrap();
    let replies = read_replies(&mut conn, bodies.len());
    for (i, reply) in replies.iter().enumerate() {
        match (i, reply) {
            (0 | 1 | 3 | 5, Response::Value(_)) => {}
            (2 | 4, Response::Ok) => {}
            (i, other) => panic!("slot {i}: wrong reply for its version/op: {other:?}"),
        }
    }
    drop(conn);
    assert_still_healthy(&handle, "mixed-versions");
    handle.join();
}

#[test]
fn slow_loris_mid_pipeline_gets_completed_frames_answered() {
    let dir = TempDir::new("loris-mid");
    let handle = start(&dir, 2, 8);

    let mut setup = client(&handle);
    setup.put("loris", &sketch(0, 1_000)).unwrap();
    drop(setup);

    // Two complete frames, then two bytes of a third frame's length
    // prefix, then silence: the completed frames must be answered; the
    // stall then costs the read deadline (300ms), not a worker.
    let body = encode_request(&Request::Card { name: "loris".into() });
    let mut conn = raw(&handle);
    conn.write_all(&framed_stream(&vec![body; 2])).unwrap();
    conn.write_all(&[9, 0]).unwrap();
    let replies = read_replies(&mut conn, 2);
    assert!(replies.iter().all(|r| matches!(r, Response::Value(_))));
    // After the deadline the server hangs up on the stalled tail.
    let mut rest = Vec::new();
    let _ = conn.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no reply may exist for a never-completed frame");
    drop(conn);
    assert_still_healthy(&handle, "loris-mid");
    handle.join();
}

#[test]
fn mid_pipeline_expiry_burns_only_its_own_frame() {
    let dir = TempDir::new("expire-one");
    // One worker with a long read deadline: a slow loris pins it for
    // ~700ms, which is the clock that expires the victim's budget.
    let handle = serve(
        &dir.0,
        "127.0.0.1:0",
        ServeOptions { read_timeout: Duration::from_millis(700), ..opts(1, 8) },
    )
    .unwrap();

    let mut setup = client(&handle);
    setup.put("expire", &sketch(0, 1_000)).unwrap();
    drop(setup);
    std::thread::sleep(Duration::from_millis(30)); // setup conn fully released

    // Pin the only worker.
    let mut loris = raw(&handle);
    loris.write_all(&64u32.to_le_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // The victim queues a whole window while pinned: an unbudgeted
    // frame, a 100ms-budget frame, another unbudgeted frame. By the
    // time the worker dequeues the connection (~700ms later) only the
    // budgeted frame's deadline has passed.
    let card = Request::Card { name: "expire".into() };
    let bodies =
        vec![encode_request(&card), encode_request_budget(&card, 100), encode_request(&card)];
    let mut victim = raw(&handle);
    victim.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    victim.write_all(&framed_stream(&bodies)).unwrap();

    let replies = read_replies(&mut victim, 3);
    assert!(matches!(replies[0], Response::Value(_)), "unbudgeted frame served: {replies:?}");
    assert!(matches!(replies[1], Response::Expired), "budgeted frame expired: {replies:?}");
    assert!(
        matches!(replies[2], Response::Value(_)),
        "expiry must not poison the next frame: {replies:?}"
    );
    drop(victim);
    drop(loris);
    assert_still_healthy(&handle, "expire-one");
    handle.join();
}

/// The property the whole optimisation must preserve: a pipelined
/// stream is *semantically invisible*. The same seeded op sequence,
/// issued one-frame-per-round-trip against one daemon and in windows of
/// eight against another, must produce byte-identical reply streams and
/// byte-identical store state (digests and every stored payload).
#[test]
fn pipelined_and_serial_streams_are_byte_identical() {
    let dir_serial = TempDir::new("prop-serial");
    let dir_piped = TempDir::new("prop-piped");
    let serial = start(&dir_serial, 2, 8);
    let piped = start(&dir_piped, 2, 8);

    // Seeded op stream over a small name pool; includes reads of names
    // that may not exist yet (typed NOT_FOUND replies must match too).
    let mut rng = SplitMix64::new(0x001D_EA11);
    let names: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
    let mut bodies = Vec::new();
    for _ in 0..96 {
        let name = names[(rng.next_u64() as usize) % names.len()].clone();
        let lo = rng.next_u64() % 5_000;
        let hi = lo + 1 + rng.next_u64() % 3_000;
        bodies.push(encode_request(&match rng.next_u64() % 5 {
            0 => Request::Put { name, sketch: format::encode(&sketch(lo, hi)) },
            1 => Request::Merge { name, sketch: format::encode(&sketch(lo, hi)) },
            2 => Request::Card { name },
            3 => Request::Get { name },
            _ => Request::List,
        }));
    }

    let serial_replies = {
        let mut conn = raw(&serial);
        let mut out = Vec::new();
        for body in &bodies {
            write_frame(&mut conn, body).unwrap();
            out.push(read_frame(&mut conn, MAX_FRAME_LEN).unwrap().expect("serial reply"));
        }
        out
    };
    let piped_replies = {
        let mut conn = raw(&piped);
        let mut out = Vec::new();
        for window in bodies.chunks(8) {
            conn.write_all(&framed_stream(window)).unwrap();
            for _ in window {
                out.push(read_frame(&mut conn, MAX_FRAME_LEN).unwrap().expect("piped reply"));
            }
        }
        out
    };
    assert_eq!(serial_replies.len(), piped_replies.len());
    for (i, (s, p)) in serial_replies.iter().zip(&piped_replies).enumerate() {
        assert_eq!(s, p, "reply {i} diverged between serial and pipelined issue");
    }

    // Store state: the digest page and every stored payload match byte
    // for byte.
    let digest = encode_request(&Request::Digest { after: String::new() });
    let mut conn_s = raw(&serial);
    let mut conn_p = raw(&piped);
    write_frame(&mut conn_s, &digest).unwrap();
    write_frame(&mut conn_p, &digest).unwrap();
    let dig_s = read_frame(&mut conn_s, MAX_FRAME_LEN).unwrap().expect("digest");
    let dig_p = read_frame(&mut conn_p, MAX_FRAME_LEN).unwrap().expect("digest");
    assert_eq!(dig_s, dig_p, "store digests diverged");
    let mut cs = client(&serial);
    let mut cp = client(&piped);
    for name in &names {
        let got_s = cs.get(name).map(|s| format::encode(&s)).ok();
        let got_p = cp.get(name).map(|s| format::encode(&s)).ok();
        assert_eq!(got_s, got_p, "stored payload for {name:?} diverged");
    }
    drop((cs, cp, conn_s, conn_p));
    serial.join();
    piped.join();
}
