//! A hardened TCP service over the crash-safe sketch store.
//!
//! `hmh-serve` is deliberately dependency-free (`std::net` only): a
//! length-prefixed binary protocol ([`proto`]), a daemon with a bounded
//! worker pool, per-connection deadlines, explicit load shedding and
//! read-only degradation ([`server`]), and a client with jittered,
//! budgeted backoff ([`client`]).
//!
//! The threat model assumed throughout: the network is untrusted.
//! Length fields from the wire never drive unbounded allocation (frames
//! are capped *before* their bodies are read, and bodies are read in
//! chunks so memory tracks received bytes, not declared lengths);
//! malformed input produces typed errors, never panics; slow or stalled
//! peers hit deadlines; overload is shed with an explicit BUSY rather
//! than queued without bound; and a `SIGKILL` at any byte leaves the
//! store salvageable by the next open's recovery scan.
//!
//! ```no_run
//! use hmh_core::{HmhParams, HyperMinHash};
//! use hmh_serve::{serve, Client, ServeOptions};
//!
//! let handle = serve("/var/lib/hmh", "127.0.0.1:7700", ServeOptions::default()).unwrap();
//! let mut client = Client::connect(handle.addr());
//!
//! let params = HmhParams::new(12, 6, 6).unwrap();
//! client.put("events", &HyperMinHash::from_items(params, 0u64..10_000)).unwrap();
//! println!("≈{} distinct", client.card("events").unwrap());
//! handle.join();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{
    typed_response, Breaker, Client, ClientError, ClientOptions, FailoverClient, RetryBudget,
};
pub use proto::{
    DigestEntry, ErrCode, Health, PeerHealth, PeerState, ProtoError, Request, Response,
    ScrubReport, SyncEntry, MAX_BATCH_ITEMS, MAX_BUDGET_MS, MAX_DIGEST_ENTRIES, MAX_FRAME_LEN,
    MAX_ITEM_LEN, MAX_LIST_NAMES, MAX_PEERS, MAX_PIPELINE_DEPTH, MAX_SCRUB_PAGE, MAX_SYNC_NAMES,
};
pub use server::{serve, ReplicationStatus, ServeError, ServeOptions, ServerHandle};
