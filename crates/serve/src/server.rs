//! The `hmh-serve` daemon: a bounded, deadlined TCP front over the store.
//!
//! Failure behavior is the design, not an afterthought:
//!
//! * **Backpressure, not queues without end.** A fixed worker pool pulls
//!   connections from a fixed-depth accept queue. When the queue is
//!   full, the accept loop *sheds* the connection — a best-effort BUSY
//!   frame, then close — instead of queueing unboundedly. Clients treat
//!   BUSY as transient and back off (see [`crate::client`]).
//! * **Deadlines everywhere.** Every connection gets read and write
//!   timeouts, so a slow-loris peer costs a worker at most one deadline,
//!   never forever.
//! * **Typed errors, never panics.** Malformed frames get a typed ERR
//!   response and a closed connection; the request handlers return
//!   [`Response`] values for every input.
//! * **Graceful degradation.** A store write failure trips the service
//!   into read-only mode: reads keep serving, writes get READ_ONLY, and
//!   HEALTH says exactly what state the service is in. A later
//!   successful open can only happen by restart — degradation is sticky
//!   because a store that failed a write is suspect until an operator
//!   (or the restart fsck) looks at it.
//! * **Drain, then exit.** Shutdown (the SHUTDOWN op, or
//!   [`ServerHandle::shutdown`]) stops accepting, lets workers finish
//!   every already-queued connection, then joins. The store lock is held
//!   for the daemon's lifetime, so a stray CLI cannot corrupt the log
//!   behind its back; a SIGKILL at any byte is recovered by the store's
//!   salvage scan on the next open.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use hmh_core::format;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::RandomOracle;
use hmh_store::{FileBackend, RetryPolicy, SketchStore, StoreError, StoreOptions, SCRUB_SLICE_BYTES};

use crate::proto::{
    decode_request_budget, encode_response, write_frame, write_frames_vectored, DigestEntry,
    ErrCode, FrameBuffer, FrameError, Health, PeerHealth, Request, Response, ScrubReport,
    SyncEntry, MAX_DIGEST_ENTRIES, MAX_FRAME_LEN, MAX_LIST_NAMES, MAX_PIPELINE_DEPTH,
    MAX_SCRUB_PAGE, MAX_SYNC_NAMES,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accept-queue depth; connections beyond it are shed with BUSY.
    pub queue_depth: usize,
    /// Per-connection read deadline (each blocking read).
    pub read_timeout: Duration,
    /// Per-connection write deadline (each blocking write).
    pub write_timeout: Duration,
    /// Frame body ceiling (tests shrink it; the protocol caps it anyway).
    pub max_frame: usize,
    /// Pacing interval between background scrub slices. Actual pacing is
    /// jittered up to +50% through the store's backoff schedule (the
    /// same pacer anti-entropy uses) so co-located daemons decorrelate.
    /// `Duration::ZERO` disables the background scrub thread entirely.
    pub scrub_interval: Duration,
    /// Committed log bytes one background scrub slice re-verifies under
    /// the store lock; bounds how long a slice can block writers.
    pub scrub_slice: usize,
    /// Store options for the underlying [`SketchStore`].
    pub store: StoreOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame: MAX_FRAME_LEN,
            scrub_interval: Duration::from_secs(1),
            scrub_slice: SCRUB_SLICE_BYTES,
            store: StoreOptions::default(),
        }
    }
}

/// Why the daemon could not start.
#[derive(Debug)]
pub enum ServeError {
    /// The store could not be opened (I/O, or another process holds the
    /// lock).
    Store(StoreError),
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "cannot open store: {e}"),
            ServeError::Io(e) => write!(f, "cannot start server: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// How often blocked loops re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(5);

/// Replication state published by an anti-entropy engine and read by the
/// daemon's HEALTH handler. The daemon owns one of these whether or not
/// replication is running: with no engine attached it reports zero
/// rounds and no peers, which is exactly the truth.
///
/// Lives in `hmh-serve` (not the replica crate) so the dependency points
/// one way: the engine depends on the server, publishes here; the server
/// never needs to know the engine exists.
#[derive(Debug, Default)]
pub struct ReplicationStatus {
    inner: Mutex<(u64, Vec<PeerHealth>)>,
    /// Peer syncs the engine skipped because the shared retry budget was
    /// too drained for background traffic — repair yielding to
    /// foreground load, surfaced as HEALTH `retry_exhausted`.
    yields: AtomicU64,
}

impl ReplicationStatus {
    /// Publish the state after an anti-entropy round: the number of
    /// completed rounds and the current per-peer health.
    pub fn publish(&self, rounds: u64, peers: Vec<PeerHealth>) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = (rounds, peers);
    }

    /// Snapshot `(rounds, peers)` for a HEALTH response.
    pub fn snapshot(&self) -> (u64, Vec<PeerHealth>) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Record one peer sync skipped for budget reasons.
    pub fn record_yield(&self) {
        self.yields.fetch_add(1, Ordering::Relaxed);
    }

    /// Peer syncs skipped for budget reasons since start.
    pub fn yields(&self) -> u64 {
        self.yields.load(Ordering::Relaxed)
    }
}

struct Shared {
    store: Mutex<SketchStore<FileBackend>>,
    /// Accepted connections waiting for a worker, each stamped with its
    /// accept time so dequeue can expire requests whose deadline budget
    /// was spent in the queue.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    /// Signals workers that the queue gained a connection or shutdown began.
    wake: Condvar,
    shutdown: AtomicBool,
    read_only: AtomicBool,
    shed: AtomicU64,
    served: AtomicU64,
    /// Requests answered with a typed EXPIRED instead of executed.
    expired: AtomicU64,
    active: AtomicU32,
    replication: Arc<ReplicationStatus>,
    opts: ServeOptions,
}

impl Shared {
    /// The store, recovering from a poisoned mutex: handlers never panic
    /// by design, but a poisoned lock must degrade, not cascade.
    fn store(&self) -> MutexGuard<'_, SketchStore<FileBackend>> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn queue(&self) -> MutexGuard<'_, VecDeque<(TcpStream, Instant)>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running daemon. Dropping the handle signals shutdown (without
/// waiting); call [`ServerHandle::join`] for an orderly drain-then-exit.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown without waiting: stop accepting, let workers
    /// drain the queue.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    /// Signal shutdown and wait for the accept loop and every worker to
    /// finish draining.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            // A worker that panicked already lost its connection; there
            // is nothing more to salvage from its JoinHandle.
            let _ = t.join();
        }
    }

    /// True once every thread has exited (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.threads.iter().all(thread::JoinHandle::is_finished)
    }

    /// The replication status slot this daemon reports in HEALTH. An
    /// anti-entropy engine clones the `Arc` and publishes into it; with
    /// no engine attached the slot stays at its zero state.
    pub fn replication(&self) -> Arc<ReplicationStatus> {
        Arc::clone(&self.shared.replication)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the daemon: open (and lock) the store at `dir`, bind `addr`,
/// spawn the accept loop and worker pool.
pub fn serve(
    dir: impl Into<PathBuf>,
    addr: impl ToSocketAddrs,
    opts: ServeOptions,
) -> Result<ServerHandle, ServeError> {
    let store = SketchStore::open_opts(dir, opts.store.clone()).map_err(ServeError::Store)?;
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        store: Mutex::new(store),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        read_only: AtomicBool::new(false),
        shed: AtomicU64::new(0),
        served: AtomicU64::new(0),
        expired: AtomicU64::new(0),
        active: AtomicU32::new(0),
        replication: Arc::new(ReplicationStatus::default()),
        opts: opts.clone(),
    });

    let mut threads = Vec::with_capacity(opts.workers + 1);
    let accept_shared = Arc::clone(&shared);
    threads.push(
        thread::Builder::new()
            .name("hmh-serve-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))?,
    );
    for i in 0..opts.workers.max(1) {
        let worker_shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("hmh-serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }
    if opts.scrub_interval > Duration::ZERO {
        let scrub_shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("hmh-serve-scrub".into())
                .spawn(move || scrub_loop(&scrub_shared))?,
        );
    }
    Ok(ServerHandle { addr, shared, threads })
}

/// The background scrub: one bounded slice of checksum re-verification
/// per paced tick. Pacing reuses the store's jittered backoff schedule
/// with base = cap = the configured interval — exactly how the
/// anti-entropy engine paces rounds — so each sleep lands in
/// interval..1.5×interval and co-located daemons decorrelate. The sleep
/// happens *outside* the store lock, in poll-tick pieces that re-check
/// shutdown; only the slice itself runs under the lock, so the scrub
/// never blocks writers longer than one bounded slice and never delays
/// drain-then-exit by more than a tick.
fn scrub_loop(shared: &Shared) {
    let interval = shared.opts.scrub_interval;
    let mut pacing = RetryPolicy::default().with_jitter_seed(0x5343_5255_4250_4143); // "SCRUBPAC"
    pacing.base_delay = interval;
    pacing.max_delay = interval;
    while !shared.shutdown.load(Ordering::SeqCst) {
        sleep_sliced(pacing.backoff_delay(1), shared);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // A store that failed a write is suspect: scrub repair writes
        // (compaction), so a read-only daemon skips slices and leaves
        // the evidence on disk for the operator restart.
        if shared.read_only.load(Ordering::SeqCst) {
            continue;
        }
        let result = shared.store().scrub_slice(shared.opts.scrub_slice);
        if let Err(StoreError::Io(_)) = result {
            // The scrub could not make a repair durable: same sticky
            // degradation as a failed client write.
            shared.read_only.store(true, Ordering::SeqCst);
        }
    }
}

/// Sleep for `total` in poll-tick pieces, re-checking the shutdown flag
/// so drain is never blocked behind a full scrub interval.
fn sleep_sliced(total: Duration, shared: &Shared) {
    let mut remaining = total;
    while remaining > Duration::ZERO && !shared.shutdown.load(Ordering::SeqCst) {
        let slice = remaining.min(POLL_TICK);
        thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => enqueue(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
            // Transient accept errors (EMFILE under a connection storm,
            // aborted handshakes): back off a tick and keep serving.
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
    // Wake every worker so they observe shutdown and drain.
    shared.wake.notify_all();
}

fn enqueue(shared: &Shared, stream: TcpStream) {
    let mut queue = shared.queue();
    if queue.len() >= shared.opts.queue_depth {
        drop(queue);
        shared.shed.fetch_add(1, Ordering::Relaxed);
        shed_busy(shared, stream);
        return;
    }
    queue.push_back((stream, Instant::now()));
    drop(queue);
    shared.wake.notify_one();
}

/// Tell a shed connection why it is being dropped — best effort, under a
/// short deadline so a non-reading peer cannot stall the accept loop.
fn shed_busy(shared: &Shared, mut stream: TcpStream) {
    let deadline = shared.opts.write_timeout.min(Duration::from_millis(100));
    let _ = stream.set_write_timeout(Some(deadline));
    let _ = write_frame(&mut stream, &encode_response(&Response::Busy));
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Timed wait: a missed notify can only delay one tick.
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(queue, POLL_TICK)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some((stream, queued_at)) = stream else { return };
        shared.active.fetch_add(1, Ordering::SeqCst);
        handle_connection(shared, stream, queued_at);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, queued_at: Instant) {
    // Deadline every blocking read and write; a misconfigured socket is
    // not worth serving without them.
    if stream.set_read_timeout(Some(shared.opts.read_timeout)).is_err()
        || stream.set_write_timeout(Some(shared.opts.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);

    // Pipelined connection loop: each pass gathers one *batch* — the
    // first frame read blocking (the connection's idle state), then
    // every further complete frame that has already arrived, up to
    // MAX_PIPELINE_DEPTH — processes the batch strictly in receipt
    // order, and flushes all replies as one vectored write. A client
    // that never pipelines degenerates to batches of one, byte-for-byte
    // the old request/response behavior. The loop is bounded by the
    // socket deadlines, EOF, and the shutdown flag.
    let mut frames = FrameBuffer::new();
    let mut first_batch = true;
    loop {
        let first = match frames.read_frame_buffered(&mut stream, shared.opts.max_frame) {
            Ok(Some(body)) => body,
            // Clean EOF, deadline, reset, or truncation: hang up. The
            // peer is gone or hostile; there is no one to answer.
            Ok(None) | Err(FrameError::Io(_)) => return,
            Err(FrameError::TooLarge { got, max }) => {
                // A lying length prefix gets a typed answer, then the
                // connection closes — resynchronizing inside a byte
                // stream after an unread body is guesswork.
                let resp = Response::Err {
                    code: ErrCode::TooLarge,
                    message: format!("frame length {got} exceeds maximum {max}"),
                };
                let _ = write_frame(&mut stream, &encode_response(&resp));
                return;
            }
        };

        // The wait of every frame in the *first* batch began at accept:
        // a pipelined burst sits in the kernel while the connection sits
        // in the queue, so elapsed-since-queue is the dead-work window
        // for all of them. Later batches measure from their own receipt
        // — client think-time between batches is not queueing delay.
        let batch_epoch = if first_batch { queued_at } else { Instant::now() };
        first_batch = false;

        // Opportunistic drain: whatever else has already arrived, up to
        // the depth cap. Never blocks — a lone frame stays a batch of
        // one. Excess frames beyond the cap wait their turn in the
        // buffer/kernel; depth overflow degrades to smaller batches,
        // never to a hang or a dropped frame.
        let mut batch = vec![first];
        let mut poison: Option<Response> = None;
        // A transport error mid-drain is ignored here: frames already
        // buffered still deserve answers, and the failure resurfaces on
        // the reply flush or the next blocking read.
        let _ = frames.fill_nonblocking(&stream);
        while batch.len() < MAX_PIPELINE_DEPTH {
            match frames.take_frame(shared.opts.max_frame) {
                Ok(Some(body)) => batch.push(body),
                Ok(None) => break,
                Err(FrameError::TooLarge { got, max }) => {
                    // The lying prefix poisons the tail: earlier frames
                    // in this batch still get their replies below.
                    poison = Some(Response::Err {
                        code: ErrCode::TooLarge,
                        message: format!("frame length {got} exceeds maximum {max}"),
                    });
                    break;
                }
                // take_frame never touches the transport; satisfy the
                // type by treating an Io as "no more frames".
                Err(FrameError::Io(_)) => break,
            }
        }

        // Process in receipt order; replies queue in the same order.
        // The reply queue is bounded by construction: one reply per
        // batch frame, and batches are depth-capped.
        let mut replies: Vec<Vec<u8>> = Vec::with_capacity(batch.len());
        let mut close = false;
        let mut shutdown = false;
        for body in batch {
            match decode_request_budget(&body) {
                // Dequeue-time expiry, per frame: the check runs when
                // the frame is *about to be executed*, so time spent on
                // earlier frames of the batch counts against its
                // budget. An expired frame burns alone — a typed
                // EXPIRED in its reply slot, and processing continues
                // with the next frame.
                Ok((_request, budget_ms))
                    if budget_ms > 0
                        && batch_epoch.elapsed()
                            >= Duration::from_millis(u64::from(budget_ms)) =>
                {
                    shared.expired.fetch_add(1, Ordering::Relaxed);
                    replies.push(encode_response(&Response::Expired));
                }
                Ok((request, _budget_ms)) => {
                    let (resp, disposition) = handle_request(shared, request);
                    replies.push(encode_response(&resp));
                    match disposition {
                        Disposition::KeepAlive => {}
                        Disposition::Shutdown => {
                            shutdown = true;
                            break;
                        }
                    }
                }
                Err(e) => {
                    // Parse failures poison the tail: the peer either
                    // speaks a different protocol version or is
                    // garbage, and resynchronizing after it is
                    // guesswork. Replies already queued for earlier
                    // frames are flushed below — never discarded.
                    poison =
                        Some(Response::Err { code: e.code(), message: e.to_string() });
                    break;
                }
            }
        }
        if let Some(resp) = poison {
            replies.push(encode_response(&resp));
            close = true;
        }

        let flushed = write_frames_vectored(&mut stream, &replies).is_ok();
        shared.served.fetch_add(replies.len() as u64, Ordering::Relaxed);
        if shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake.notify_all();
            return;
        }
        if !flushed || close || shared.shutdown.load(Ordering::SeqCst) {
            // Write failure, poisoned tail, or draining: this batch was
            // the connection's last.
            return;
        }
    }
}

enum Disposition {
    KeepAlive,
    Shutdown,
}

fn handle_request(shared: &Shared, request: Request) -> (Response, Disposition) {
    let resp = match request {
        Request::Put { name, sketch } => write_op(shared, &name, sketch, false),
        Request::Merge { name, sketch } => write_op(shared, &name, sketch, true),
        Request::BatchPut { name, p, q, r, algorithm, seed, items } => {
            batch_put(shared, &name, (p, q, r), algorithm, seed, &items)
        }
        Request::Get { name } => {
            let store = shared.store();
            match store.get_encoded(&name) {
                Some(bytes) => Response::Sketch(bytes.to_vec()),
                // A fenced name is typed, never a torn payload and never
                // a silent NOT_FOUND that would let a caller conclude
                // the data never existed.
                None if store.is_quarantined(&name) => quarantined(&name),
                None => not_found(&name),
            }
        }
        Request::Card { name } => match decoded(shared, &name) {
            Ok(sketch) => Response::Value(sketch.cardinality()),
            Err(resp) => resp,
        },
        Request::Jaccard { a, b } => match (decoded(shared, &a), decoded(shared, &b)) {
            (Ok(sa), Ok(sb)) => match sa.jaccard(&sb) {
                Ok(j) => Response::Value(j.estimate),
                Err(e) => Response::Err { code: ErrCode::Incompatible, message: e.to_string() },
            },
            (Err(resp), _) | (_, Err(resp)) => resp,
        },
        Request::List => Response::Names(shared.store().names().map(str::to_string).collect()),
        Request::ListPage { after } => {
            // A single daemon always answers its whole page; `partial`
            // is a router-side marker for missing shards.
            let names = shared.store().names_page(&after, MAX_LIST_NAMES);
            Response::NamesPage { names, partial: false }
        }
        Request::Delete { name } => delete_op(shared, &name),
        Request::Health => Response::Health(health_snapshot(shared)),
        Request::Digest { after } => {
            Response::Digests(digest_page(&shared.store(), &after, MAX_DIGEST_ENTRIES))
        }
        Request::Sync { names } => sync_page(shared, &names),
        Request::Scrub { trigger, after } => scrub_op(shared, trigger, &after),
        Request::Shutdown => return (Response::Ok, Disposition::Shutdown),
    };
    (resp, Disposition::KeepAlive)
}

fn digest_page(
    store: &SketchStore<FileBackend>,
    after: &str,
    limit: usize,
) -> Vec<DigestEntry> {
    store
        .digest_page(after, limit)
        .into_iter()
        .map(|(name, checksum)| DigestEntry { name, checksum })
        .collect()
}

/// SYNC: answer the longest *prefix* of the requested names whose encoded
/// response fits the frame budget; the peer re-requests the remainder
/// starting at the first name it did not receive. A name that vanished
/// between DIGEST and SYNC comes back with an empty payload — an explicit
/// "gone" the peer can distinguish from "cut off by the budget". Both
/// DIGEST and SYNC are reads: they keep serving in read-only mode, so a
/// degraded replica still donates its acknowledged state to the cluster.
fn sync_page(shared: &Shared, names: &[String]) -> Response {
    // Response overhead: status byte + u16 entry count; per entry:
    // u16 name length + name + u32 payload length + payload.
    let budget = shared.opts.max_frame.min(MAX_FRAME_LEN);
    let mut used = 3usize;
    let mut entries = Vec::new();
    let store = shared.store();
    for name in names.iter().take(MAX_SYNC_NAMES) {
        let payload = store.get_encoded(name).map(<[u8]>::to_vec).unwrap_or_default();
        let cost = 2 + name.len() + 4 + payload.len();
        // Always answer at least one entry, or an over-budget first
        // sketch would make the peer spin on an empty reply forever.
        if !entries.is_empty() && used + cost > budget {
            break;
        }
        used += cost;
        entries.push(SyncEntry { name: name.clone(), payload });
    }
    Response::Sketches(entries)
}

fn not_found(name: &str) -> Response {
    Response::Err { code: ErrCode::NotFound, message: format!("no sketch named {name:?}") }
}

fn quarantined(name: &str) -> Response {
    Response::Err {
        code: ErrCode::CorruptQuarantined,
        message: format!(
            "sketch {name:?} is quarantined: its stored bytes failed the checksum scrub and \
             no valid copy survives here; read-repair or a fresh write releases it"
        ),
    }
}

/// SCRUB: optionally run one full pass, then report lifetime counters
/// plus one page of quarantined names. Triggering can write (findings
/// are repaired by compaction), so it respects read-only degradation
/// like every other write; the status form is a pure read and always
/// answers — a degraded replica must still be able to enumerate its
/// fence for read-repair.
fn scrub_op(shared: &Shared, trigger: bool, after: &str) -> Response {
    let mut store = shared.store();
    if trigger {
        if shared.read_only.load(Ordering::SeqCst) {
            return Response::ReadOnly;
        }
        if let Err(e) = store.scrub_full(shared.opts.scrub_slice) {
            drop(store);
            return commit_result(shared, Err(e));
        }
    }
    let stats = store.scrub_stats();
    Response::Scrub(ScrubReport {
        rounds: stats.rounds,
        records: stats.records,
        corrupt_found: stats.corrupt_found,
        repaired: stats.repaired,
        quarantined: store.quarantined_count() as u64,
        last_scrub_age_ms: store.last_scrub_age_ms().unwrap_or(u64::MAX),
        names: store.quarantined_page(after, MAX_SCRUB_PAGE),
    })
}

// The Err variant is a ready-to-send Response (Health grew past the
// clippy size bar); it is written to the socket immediately, never
// propagated, so boxing would only add an allocation on the error path.
#[allow(clippy::result_large_err)]
fn decoded(shared: &Shared, name: &str) -> Result<HyperMinHash, Response> {
    let store = shared.store();
    let Some(bytes) = store.get_encoded(name) else {
        return Err(if store.is_quarantined(name) { quarantined(name) } else { not_found(name) });
    };
    format::decode(bytes)
        .map_err(|e| Response::Err { code: ErrCode::BadSketch, message: e.to_string() })
}

/// PUT and MERGE: validate before touching the store, refuse in
/// read-only mode, and trip read-only degradation on a store I/O error.
fn write_op(shared: &Shared, name: &str, payload: Vec<u8>, merge: bool) -> Response {
    if shared.read_only.load(Ordering::SeqCst) {
        return Response::ReadOnly;
    }
    // Decode up front: hostile payloads are a protocol error, not a
    // store error, and must not consume a write.
    let incoming = match format::decode(&payload) {
        Ok(sketch) => sketch,
        Err(e) => {
            return Response::Err { code: ErrCode::BadSketch, message: e.to_string() };
        }
    };

    let mut store = shared.store();
    let result = if merge {
        match store.get_encoded(name).map(format::decode) {
            // Existing sketch decodes: fold the incoming one in.
            Some(Ok(mut existing)) => match existing.merge(&incoming) {
                Ok(()) => store.put(name, &existing),
                Err(e) => {
                    return Response::Err { code: ErrCode::Incompatible, message: e.to_string() };
                }
            },
            // No existing sketch: merge degenerates to put.
            None => store.put_encoded(name, &payload),
            Some(Err(e)) => Err(StoreError::Format(e)),
        }
    } else {
        store.put_encoded(name, &payload)
    };
    drop(store);
    commit_result(shared, result)
}

/// BATCH_PUT: ingest a frame of raw items into the named sketch, creating
/// it with the requested configuration if absent. Same write discipline
/// as [`write_op`]: validate before touching the store, refuse in
/// read-only mode, and trip read-only degradation on a store I/O error.
fn batch_put(
    shared: &Shared,
    name: &str,
    (p, q, r): (u8, u8, u8),
    algorithm: u8,
    seed: u64,
    items: &[Vec<u8>],
) -> Response {
    if shared.read_only.load(Ordering::SeqCst) {
        return Response::ReadOnly;
    }
    // Validate the sketch configuration up front: a hostile configuration
    // is a protocol-level error and must not consume a write.
    let params = match HmhParams::new(u32::from(p), u32::from(q), u32::from(r)) {
        Ok(params) => params,
        Err(e) => return Response::Err { code: ErrCode::BadSketch, message: e.to_string() },
    };
    let algorithm = match format::algorithm_from_byte(algorithm) {
        Ok(alg) => alg,
        Err(e) => return Response::Err { code: ErrCode::BadSketch, message: e.to_string() },
    };
    let oracle = RandomOracle::new(algorithm, seed);

    // Hold the store lock across read-modify-write so concurrent batches
    // to the same name serialize instead of losing updates.
    let mut store = shared.store();
    let mut sketch = match store.get_encoded(name).map(format::decode) {
        Some(Ok(existing)) => {
            if existing.params() != params || existing.oracle() != oracle {
                return Response::Err {
                    code: ErrCode::Incompatible,
                    message: format!(
                        "sketch {name:?} exists with a different configuration; \
                         batch ingest cannot change parameters"
                    ),
                };
            }
            existing
        }
        Some(Err(e)) => {
            return Response::Err { code: ErrCode::BadSketch, message: e.to_string() }
        }
        None => HyperMinHash::with_oracle(params, oracle),
    };
    let slices: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
    sketch.insert_batch(&slices);
    let result = store.put(name, &sketch);
    drop(store);
    commit_result(shared, result)
}

/// DELETE: the routing tier's rebalance *release* step. Same write
/// discipline as [`write_op`]: refuse in read-only mode, trip read-only
/// degradation on a store I/O error. Deleting an absent name is
/// NOT_FOUND, not success — the releasing router must know whether this
/// replica ever held the sketch.
fn delete_op(shared: &Shared, name: &str) -> Response {
    if shared.read_only.load(Ordering::SeqCst) {
        return Response::ReadOnly;
    }
    let mut store = shared.store();
    let result = store.remove(name);
    drop(store);
    match result {
        Ok(true) => Response::Ok,
        Ok(false) => not_found(name),
        Err(e) => commit_result(shared, Err(e)),
    }
}

/// Map a store write result onto the wire, tripping read-only
/// degradation when the disk refuses the write.
fn commit_result(shared: &Shared, result: Result<(), StoreError>) -> Response {
    match result {
        Ok(()) => Response::Ok,
        Err(StoreError::Io(e)) => {
            // The store could not make the write durable. Degrade to
            // read-only: acknowledged state stays servable, further
            // writes are refused until an operator restarts (which runs
            // recovery).
            shared.read_only.store(true, Ordering::SeqCst);
            Response::Err {
                code: ErrCode::Store,
                message: format!("write failed ({e}); service is now read-only"),
            }
        }
        Err(e) => Response::Err { code: ErrCode::Store, message: e.to_string() },
    }
}

fn health_snapshot(shared: &Shared) -> Health {
    let mut store = shared.store();
    let (sketches, fsck) = (store.len(), store.fsck());
    let scrub = store.scrub_stats();
    let scrub_quarantined = store.quarantined_count() as u64;
    let last_scrub_age_ms = store.last_scrub_age_ms().unwrap_or(u64::MAX);
    drop(store);
    let (store_clean, quarantined, truncated_tail) = match fsck {
        Ok(report) => (report.is_clean(), report.quarantined as u64, report.truncated_tail),
        // Health must answer even when the disk will not: report dirty.
        Err(_) => (false, 0, false),
    };
    let (rounds, peers) = shared.replication.snapshot();
    Health {
        read_only: shared.read_only.load(Ordering::SeqCst),
        workers: clamp_u32(shared.opts.workers),
        queue_capacity: clamp_u32(shared.opts.queue_depth),
        queue_depth: clamp_u32(shared.queue().len()),
        active: shared.active.load(Ordering::SeqCst),
        shed: shared.shed.load(Ordering::Relaxed),
        served: shared.served.load(Ordering::Relaxed),
        sketches: sketches as u64,
        store_clean,
        quarantined,
        truncated_tail,
        rounds,
        // A plain daemon routes nothing; a routing tier synthesizes its
        // own HEALTH with these filled in.
        route_epoch: 0,
        route_handoffs: 0,
        expired: shared.expired.load(Ordering::Relaxed),
        // For a daemon, budget pressure shows up as anti-entropy syncs
        // yielding to foreground load; a breaker lives client-side, so a
        // plain daemon never opens one.
        retry_exhausted: shared.replication.yields(),
        breaker_open: 0,
        scrub_rounds: scrub.rounds,
        records_scrubbed: scrub.records,
        corrupt_found: scrub.corrupt_found,
        repaired: scrub.repaired,
        scrub_quarantined,
        last_scrub_age_ms,
        peers,
    }
}

fn clamp_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::read_frame;
    use hmh_core::HmhParams;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hmh-serve-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_opts() -> ServeOptions {
        ServeOptions {
            workers: 2,
            queue_depth: 4,
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            store: StoreOptions::no_sleep(),
            ..ServeOptions::default()
        }
    }

    fn sketch_bytes(lo: u64, hi: u64) -> Vec<u8> {
        let params = HmhParams::new(6, 6, 6).unwrap();
        format::encode(&HyperMinHash::from_items(params, lo..hi))
    }

    #[test]
    fn serve_binds_and_drains_on_shutdown() {
        let dir = tmpdir("bind");
        let handle = serve(&dir, "127.0.0.1:0", test_opts()).unwrap();
        assert_ne!(handle.addr().port(), 0);
        handle.join();
        // The lock is released: a fresh open succeeds.
        assert!(SketchStore::open(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_holds_the_store_lock() {
        let dir = tmpdir("lock");
        let handle = serve(&dir, "127.0.0.1:0", test_opts()).unwrap();
        let err = SketchStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Locked(_)), "{err:?}");
        // And a second daemon on the same dir refuses to start.
        assert!(matches!(
            serve(&dir, "127.0.0.1:0", test_opts()),
            Err(ServeError::Store(StoreError::Locked(_)))
        ));
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn exchange(conn: &mut TcpStream, req: &Request) -> Response {
        write_frame(conn, &crate::proto::encode_request(req)).unwrap();
        let body = read_frame(conn, MAX_FRAME_LEN).unwrap().unwrap();
        crate::proto::decode_response(&body).unwrap()
    }

    /// Flip one payload byte of the record holding `name` in whichever
    /// store file contains it, corrupting its checksum on disk.
    fn flip_record_payload(dir: &std::path::Path, name: &str) {
        for file in ["wal.hmr", "snapshot.hmr"] {
            let path = dir.join(file);
            let Ok(mut bytes) = std::fs::read(&path) else { continue };
            // Locate the record's name field: the name bytes preceded by
            // their u16 length at the header's name_len offset (6 bytes
            // before the name, with payload_len in between).
            let name_bytes = name.as_bytes();
            let hit = bytes.windows(name_bytes.len()).enumerate().find_map(|(i, w)| {
                if w != name_bytes || i < 6 {
                    return None;
                }
                let len = u16::from_le_bytes([bytes[i - 6], bytes[i - 5]]);
                (usize::from(len) == name_bytes.len()).then_some(i)
            });
            if let Some(i) = hit {
                // Flip a byte a little way into the payload (which is
                // hundreds of bytes of encoded sketch).
                bytes[i + name_bytes.len() + 8] ^= 0x01;
                std::fs::write(&path, &bytes).unwrap();
                return;
            }
        }
        panic!("record for {name:?} not found in either store file");
    }

    #[test]
    fn corrupt_record_is_fenced_typed_and_released_by_a_valid_write() {
        let dir = tmpdir("fence");
        {
            let mut store = SketchStore::open_opts(&dir, StoreOptions::no_sleep()).unwrap();
            store.put_encoded("good", &sketch_bytes(0, 400)).unwrap();
            store.put_encoded("bad", &sketch_bytes(400, 800)).unwrap();
        }
        flip_record_payload(&dir, "bad");

        let handle = serve(&dir, "127.0.0.1:0", test_opts()).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();

        // The healthy record still serves; the corrupt one is fenced
        // with a typed error, never a torn payload.
        assert_eq!(
            exchange(&mut conn, &Request::Get { name: "good".into() }),
            Response::Sketch(sketch_bytes(0, 400))
        );
        match exchange(&mut conn, &Request::Get { name: "bad".into() }) {
            Response::Err { code: ErrCode::CorruptQuarantined, .. } => {}
            other => panic!("expected CorruptQuarantined, got {other:?}"),
        }
        // CARD on a fenced name is the same typed refusal.
        match exchange(&mut conn, &Request::Card { name: "bad".into() }) {
            Response::Err { code: ErrCode::CorruptQuarantined, .. } => {}
            other => panic!("expected CorruptQuarantined, got {other:?}"),
        }
        // SCRUB status enumerates the fence.
        match exchange(&mut conn, &Request::Scrub { trigger: false, after: String::new() }) {
            Response::Scrub(report) => {
                assert_eq!(report.quarantined, 1);
                assert_eq!(report.names, vec!["bad".to_string()]);
                assert!(report.corrupt_found >= 1, "{report:?}");
            }
            other => panic!("expected Scrub, got {other:?}"),
        }
        // A validated write releases the fence.
        let fresh = sketch_bytes(800, 1200);
        assert_eq!(
            exchange(&mut conn, &Request::Put { name: "bad".into(), sketch: fresh.clone() }),
            Response::Ok
        );
        assert_eq!(
            exchange(&mut conn, &Request::Get { name: "bad".into() }),
            Response::Sketch(fresh)
        );
        match exchange(&mut conn, &Request::Scrub { trigger: false, after: String::new() }) {
            Response::Scrub(report) => {
                assert_eq!(report.quarantined, 0);
                assert!(report.names.is_empty());
                assert!(report.repaired >= 1, "{report:?}");
            }
            other => panic!("expected Scrub, got {other:?}"),
        }
        drop(conn);
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_trigger_verifies_every_record_and_reports_clean() {
        let dir = tmpdir("scrub-trigger");
        // Background scrub off: the triggered pass must do the counting.
        let opts = ServeOptions { scrub_interval: Duration::ZERO, ..test_opts() };
        let handle = serve(&dir, "127.0.0.1:0", opts).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        for (name, lo) in [("a", 0u64), ("b", 300), ("c", 600)] {
            let req = Request::Put { name: name.into(), sketch: sketch_bytes(lo, lo + 300) };
            assert_eq!(exchange(&mut conn, &req), Response::Ok);
        }
        match exchange(&mut conn, &Request::Scrub { trigger: true, after: String::new() }) {
            Response::Scrub(report) => {
                assert!(report.rounds >= 1, "{report:?}");
                assert!(report.records >= 3, "{report:?}");
                assert_eq!(report.corrupt_found, 0);
                assert_eq!(report.quarantined, 0);
                assert!(report.last_scrub_age_ms < u64::MAX, "age must be reported");
            }
            other => panic!("expected Scrub, got {other:?}"),
        }
        // HEALTH carries the same counters.
        match exchange(&mut conn, &Request::Health) {
            Response::Health(h) => {
                assert!(h.scrub_rounds >= 1, "{h:?}");
                assert!(h.records_scrubbed >= 3, "{h:?}");
                assert_eq!(h.corrupt_found, 0);
                assert_eq!(h.scrub_quarantined, 0);
                assert!(h.last_scrub_age_ms < u64::MAX);
            }
            other => panic!("expected Health, got {other:?}"),
        }
        drop(conn);
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_scrub_runs_without_a_trigger() {
        let dir = tmpdir("scrub-bg");
        let opts = ServeOptions { scrub_interval: Duration::from_millis(20), ..test_opts() };
        let handle = serve(&dir, "127.0.0.1:0", opts).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let put = Request::Put { name: "bg".into(), sketch: sketch_bytes(0, 200) };
        assert_eq!(exchange(&mut conn, &put), Response::Ok);
        // An empty pair of files scrubs in one slice per tick; a couple
        // of intervals is plenty for at least one full pass.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match exchange(&mut conn, &Request::Scrub { trigger: false, after: String::new() }) {
                Response::Scrub(report) if report.rounds >= 1 => break,
                Response::Scrub(_) if Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(20));
                }
                other => panic!("background scrub never completed a pass: {other:?}"),
            }
        }
        drop(conn);
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_get_round_trip_over_a_raw_socket() {
        let dir = tmpdir("raw");
        let handle = serve(&dir, "127.0.0.1:0", test_opts()).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();

        let payload = sketch_bytes(0, 500);
        let put = Request::Put { name: "raw".into(), sketch: payload.clone() };
        write_frame(&mut conn, &crate::proto::encode_request(&put)).unwrap();
        let body = read_frame(&mut conn, MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(crate::proto::decode_response(&body).unwrap(), Response::Ok);

        let get = Request::Get { name: "raw".into() };
        write_frame(&mut conn, &crate::proto::encode_request(&get)).unwrap();
        let body = read_frame(&mut conn, MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(
            crate::proto::decode_response(&body).unwrap(),
            Response::Sketch(payload),
            "stored bytes come back bit-identical"
        );
        drop(conn);
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
