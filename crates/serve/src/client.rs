//! Client for the `hmh-serve` daemon: one connection, typed errors, and
//! budgeted jittered backoff on transient failures.
//!
//! The client reuses the store's [`RetryPolicy`] as its retry engine:
//! connect failures, deadlines, resets, and BUSY sheds all map onto
//! transient [`io::Error`]s and flow through the same jittered
//! exponential backoff with a total-time budget. Every protocol
//! operation is idempotent (PUT overwrites, MERGE folds a fixed
//! payload, reads read), so retrying after an ambiguous failure is
//! always safe.
//!
//! Failures the *server* reports deliberately — NOT_FOUND, READ_ONLY, a
//! store error — are not retried: they would fail the same way again.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hmh_core::format::{self, FormatError};
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::RandomOracle;
use hmh_store::RetryPolicy;

use crate::proto::{
    decode_response, encode_request_budget, read_frame, write_frame, write_frames_vectored,
    DigestEntry, ErrCode, FrameError, Health, Request, Response, ScrubReport, SyncEntry,
    MAX_BATCH_ITEMS, MAX_BUDGET_MS, MAX_FRAME_LEN, MAX_ITEM_LEN, MAX_PIPELINE_DEPTH,
};

/// A shared token-bucket retry budget (Finagle-style): retries across a
/// whole process are capped to a fraction of its successes, so N
/// concurrent callers facing a sick backend spend one bounded pool of
/// probes instead of N independent retry schedules amplifying the
/// outage into a retry storm.
///
/// The bucket holds integer *millitokens*. Every success deposits
/// `deposit` millitokens (clamped to the cap); every retry costs 1000.
/// The default — a 10-token cap, 100 millitokens per success — allows
/// sustained retries at 10% of the success rate plus a 10-retry burst
/// from a full bucket. The bucket starts full so cold starts against a
/// briefly-unavailable server still get their first probes.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicI64,
    cap: i64,
    deposit: i64,
    exhausted: AtomicU64,
}

/// Millitokens one retry costs.
const RETRY_COST: i64 = 1000;

impl Default for RetryBudget {
    fn default() -> Self {
        Self::new(10, 100)
    }
}

impl RetryBudget {
    /// Budget with a cap of `cap_tokens` whole tokens, depositing
    /// `deposit_millitokens` per recorded success (1000 = one full
    /// retry earned per success). The bucket starts full.
    pub fn new(cap_tokens: u32, deposit_millitokens: u32) -> Self {
        let cap = i64::from(cap_tokens.max(1)) * RETRY_COST;
        Self {
            millitokens: AtomicI64::new(cap),
            cap,
            deposit: i64::from(deposit_millitokens),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Deposit for one observed success, clamped to the cap.
    pub fn record_success(&self) {
        let _ = self.millitokens.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some((v + self.deposit).min(self.cap))
        });
    }

    /// Spend one retry token. Returns false — and counts the denial —
    /// when the bucket is empty; the caller must fail typed, not retry.
    pub fn try_spend(&self) -> bool {
        let spent = self
            .millitokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                (v >= RETRY_COST).then_some(v - RETRY_COST)
            })
            .is_ok();
        if !spent {
            self.exhausted.fetch_add(1, Ordering::Relaxed);
        }
        spent
    }

    /// Spend a *low-priority* toll: succeeds only while the bucket
    /// stays at least half full after the spend, and costs one
    /// `deposit` (not a full retry token) so background traffic that
    /// also [`RetryBudget::record_success`]es its completed work runs
    /// net-zero in steady state. Anti-entropy repair uses this: when
    /// foreground retries drain the bucket below half — or its own
    /// syncs keep failing and stop re-depositing — repair yields its
    /// probes instead of competing. Denials are not counted as
    /// exhaustion; yielding is the designed behavior, and the caller
    /// records it under its own name.
    pub fn try_spend_low(&self) -> bool {
        self.millitokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                (v - self.deposit >= self.cap / 2).then_some(v - self.deposit)
            })
            .is_ok()
    }

    /// Denials [`RetryBudget::try_spend`] has issued — the
    /// `retry_exhausted` HEALTH counter for processes that own a budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Current balance in millitokens (observability and tests).
    pub fn balance_millitokens(&self) -> i64 {
        self.millitokens.load(Ordering::Relaxed)
    }
}

/// Per-replica circuit breaker: after [`BREAKER_OPEN_AFTER`] consecutive
/// failures the replica is skipped for an exponentially growing,
/// capped number of operations, then probed again (half-open); one
/// success closes it. The op counter is supplied by the caller —
/// [`FailoverClient`] advances it once per logical operation, including
/// refused ones, so an all-open group keeps aging toward its next probe
/// and recovery needs no background thread.
///
/// This mirrors the replica engine's peer health ladder (suspect after
/// the same threshold, capped exponential rounds) so one mental model
/// covers both; it lives here because `hmh-replica` depends on this
/// crate, not the other way around.
#[derive(Debug, Clone, Default)]
pub struct Breaker {
    consecutive_failures: u32,
    skip_until: u64,
}

/// Consecutive failures before the breaker opens.
pub const BREAKER_OPEN_AFTER: u32 = 3;
/// Longest skip the exponential backoff can reach, in operations.
pub const BREAKER_CAP_OPS: u64 = 16;

impl Breaker {
    /// A closed breaker.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when operation number `op` may try this replica.
    pub fn admits(&self, op: u64) -> bool {
        op >= self.skip_until
    }

    /// One successful exchange: the breaker closes fully.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.skip_until = 0;
    }

    /// One failed exchange during operation `op`.
    pub fn record_failure(&mut self, op: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.consecutive_failures >= BREAKER_OPEN_AFTER {
            let exponent = (self.consecutive_failures - BREAKER_OPEN_AFTER).min(32);
            let skip = 1u64.checked_shl(exponent).unwrap_or(u64::MAX).min(BREAKER_CAP_OPS);
            self.skip_until = op.saturating_add(skip).saturating_add(1);
        }
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Per-read deadline on the connection.
    pub read_timeout: Duration,
    /// Per-write deadline on the connection.
    pub write_timeout: Duration,
    /// Backoff policy for transient failures (connect errors, deadlines,
    /// resets, and BUSY sheds).
    pub retry: RetryPolicy,
    /// Per-operation deadline budget. When set, every request is stamped
    /// with its *remaining* budget on the wire (shrinking across
    /// retries) so servers can refuse work the caller has already
    /// abandoned; once it hits zero the call fails locally with
    /// [`ClientError::Expired`]. `None` sends v1 frames with no
    /// deadline. An explicit [`Client::set_deadline`] overrides this.
    pub op_budget: Option<Duration>,
    /// Shared retry budget. When set, every retry (never the first
    /// attempt) must buy a token or the call fails typed with
    /// [`ClientError::RetryBudgetExhausted`]; successes deposit back.
    /// Clone the `Arc` into every client in the process so they share
    /// one pool.
    pub budget: Option<Arc<RetryBudget>>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            op_budget: None,
            budget: None,
        }
    }
}

/// Why a client call failed, after retries.
#[derive(Debug)]
pub enum ClientError {
    /// The server shed the connection under load and backoff ran out.
    Busy,
    /// The server is in read-only degradation; writes are refused.
    ReadOnly,
    /// No sketch with this name.
    NotFound(String),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable error class from the wire.
        code: ErrCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A batch item exceeded the protocol's per-item ceiling.
    ItemTooLarge {
        /// Offending item length in bytes.
        len: usize,
        /// The protocol maximum.
        max: usize,
    },
    /// A pipelined submission asked for more in-flight frames than
    /// [`MAX_PIPELINE_DEPTH`] allows. Refused typed *before any bytes
    /// move*: writing a deeper batch without draining replies can
    /// deadlock the connection on full kernel buffers, and a hang is
    /// the one failure mode this protocol never accepts.
    PipelineOverflow {
        /// Frames the caller tried to put in flight.
        submitted: usize,
        /// The [`MAX_PIPELINE_DEPTH`] ceiling.
        max: usize,
    },
    /// The server's reply could not be parsed (version skew or a
    /// corrupted stream).
    BadReply(String),
    /// A sketch payload failed to decode.
    Format(FormatError),
    /// Transport failure (connect, deadline, reset) after retries.
    Io(io::Error),
    /// The operation's deadline budget ran out: either the server
    /// answered a typed EXPIRED (it dequeued the request after the
    /// budget was spent and refused the dead work), or the budget
    /// expired locally before another attempt could be stamped. Final —
    /// the caller has already given up on this result by definition.
    Expired,
    /// The shared [`RetryBudget`] was empty when a retry wanted a token.
    /// Final and deliberate: under a retry storm the budget converts
    /// unbounded amplification into typed, bounded refusal.
    RetryBudgetExhausted,
    /// Every replica's circuit breaker was open, so the operation was
    /// refused without a single dial. Distinct from
    /// [`ClientError::AllReplicasDown`]: that one spent its attempt
    /// budget probing; this one refused to probe at all.
    BreakerOpen {
        /// Replicas considered (all skipped).
        replicas: usize,
    },
    /// A [`FailoverClient`] spent its whole attempt budget without any
    /// replica answering. Carries the budget and one error string per
    /// exhausted attempt (in rotation order) so the caller — a routing
    /// tier deciding whether a whole group is down — sees every reason,
    /// not just the last.
    AllReplicasDown {
        /// Attempts spent before giving up.
        attempts: u32,
        /// Display form of each attempt's error, oldest first.
        last_errors: Vec<String>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy => write!(f, "server is shedding load (busy); retries exhausted"),
            ClientError::ReadOnly => write!(f, "server is read-only; write refused"),
            ClientError::NotFound(name) => write!(f, "no sketch named {name:?}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::ItemTooLarge { len, max } => {
                write!(f, "batch item is {len} bytes; the protocol caps items at {max}")
            }
            ClientError::PipelineOverflow { submitted, max } => {
                write!(f, "pipeline of {submitted} frames exceeds the depth cap of {max}")
            }
            ClientError::BadReply(detail) => write!(f, "unparseable server reply: {detail}"),
            ClientError::Format(e) => write!(f, "sketch payload: {e}"),
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Expired => write!(f, "request deadline budget expired"),
            ClientError::RetryBudgetExhausted => {
                write!(f, "shared retry budget exhausted; refusing to amplify")
            }
            ClientError::BreakerOpen { replicas } => {
                write!(f, "circuit breaker open on all {replicas} replicas; refusing to dial")
            }
            ClientError::AllReplicasDown { attempts, last_errors } => {
                write!(f, "all replicas down after {attempts} attempts")?;
                if let Some(last) = last_errors.last() {
                    write!(f, " (last: {last})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Format(e) => Some(e),
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for ClientError {
    fn from(e: FormatError) -> Self {
        ClientError::Format(e)
    }
}

/// Marker wrapped in a transient [`io::Error`] so a BUSY shed rides the
/// retry loop like any other transient failure, yet stays
/// distinguishable from a real deadline once retries are exhausted.
#[derive(Debug)]
struct BusyMarker;

impl std::fmt::Display for BusyMarker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server shed the connection (busy)")
    }
}

impl std::error::Error for BusyMarker {}

fn busy_error() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, BusyMarker)
}

fn is_busy(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<BusyMarker>())
}

/// Marker carried in a *non-transient* [`io::Error`] when the local
/// deadline budget hits zero: the retry loop returns it immediately
/// (no further attempts can beat a deadline that already passed), and
/// [`Client::request`] maps it to [`ClientError::Expired`].
#[derive(Debug)]
struct ExpiredMarker;

impl std::fmt::Display for ExpiredMarker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline budget expired before the attempt")
    }
}

impl std::error::Error for ExpiredMarker {}

fn expired_error() -> io::Error {
    // `Other` is deliberately non-transient per `hmh_store::is_transient`.
    io::Error::other(ExpiredMarker)
}

fn is_expired(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<ExpiredMarker>())
}

/// Marker for a retry-budget denial from the gate, mapped to
/// [`ClientError::RetryBudgetExhausted`].
#[derive(Debug)]
struct BudgetMarker;

impl std::fmt::Display for BudgetMarker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shared retry budget exhausted")
    }
}

impl std::error::Error for BudgetMarker {}

fn budget_error() -> io::Error {
    io::Error::other(BudgetMarker)
}

fn is_budget_denial(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<BudgetMarker>())
}

/// Remaining budget to stamp on the wire for `deadline`, or `None` when
/// it has already passed. Sub-millisecond remainders round *up* to 1 ms:
/// a 0 on the wire means "no deadline", which an almost-expired request
/// must never claim.
fn remaining_budget_ms(deadline: Instant) -> Option<u32> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return None;
    }
    let ms = u32::try_from(remaining.as_millis()).unwrap_or(MAX_BUDGET_MS).min(MAX_BUDGET_MS);
    Some(ms.max(1))
}

/// A connection to one daemon. Reconnects lazily after any transport
/// error, so one `Client` value survives server restarts.
pub struct Client {
    addr: SocketAddr,
    opts: ClientOptions,
    conn: Option<TcpStream>,
    deadline: Option<Instant>,
}

impl Client {
    /// Client for the daemon at `addr` with default options.
    pub fn connect(addr: SocketAddr) -> Self {
        Self::with_options(addr, ClientOptions::default())
    }

    /// Client with explicit options (tests shrink the deadlines and seed
    /// the retry jitter).
    pub fn with_options(addr: SocketAddr, opts: ClientOptions) -> Self {
        Self { addr, opts, conn: None, deadline: None }
    }

    /// Pin an absolute deadline for subsequent operations (overriding
    /// any [`ClientOptions::op_budget`]); `None` clears it. A routing
    /// tier uses this to propagate one caller's remaining budget across
    /// every scatter-gather leg it fans out to — each leg stamps the
    /// *remaining* time, so downstream work never outlives the caller.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Store `sketch` under `name`, replacing any existing sketch.
    pub fn put(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), ClientError> {
        let request = Request::Put { name: name.to_string(), sketch: format::encode(sketch) };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// Ingest raw items into the sketch stored under `name` server-side,
    /// creating it with `params`/`oracle` if absent.
    ///
    /// Items are streamed in protocol-capped frames ([`MAX_BATCH_ITEMS`]
    /// items of at most [`MAX_ITEM_LEN`] bytes each), so one call may
    /// issue several round-trips. Each frame is idempotent — re-inserting
    /// an item never changes a sketch — so retries after ambiguous
    /// transport failures stay safe. An empty `items` slice still sends
    /// one frame, creating the (empty) sketch if it does not exist.
    pub fn batch_put(
        &mut self,
        name: &str,
        params: HmhParams,
        oracle: RandomOracle,
        items: &[&[u8]],
    ) -> Result<(), ClientError> {
        if let Some(item) = items.iter().find(|item| item.len() > MAX_ITEM_LEN) {
            return Err(ClientError::ItemTooLarge { len: item.len(), max: MAX_ITEM_LEN });
        }
        let widths = [params.p(), params.q(), params.r()]
            .map(|w| u8::try_from(w).expect("invariant: register widths fit a byte"));
        let algorithm = format::algorithm_to_byte(oracle.algorithm());
        let mut chunks: Vec<&[&[u8]]> = items.chunks(MAX_BATCH_ITEMS).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let requests: Vec<Request> = chunks
            .iter()
            .map(|chunk| Request::BatchPut {
                name: name.to_string(),
                p: widths[0],
                q: widths[1],
                r: widths[2],
                algorithm,
                seed: oracle.seed(),
                items: chunk.iter().map(|item| item.to_vec()).collect(),
            })
            .collect();
        // Multi-frame streams ride the pipeline: up to MAX_PIPELINE_DEPTH
        // chunk frames in flight per round trip instead of one. Safe to
        // replay whole batches on transient failures — item insertion is
        // idempotent.
        for window in requests.chunks(MAX_PIPELINE_DEPTH) {
            for resp in self.pipeline(window)? {
                match typed_response(resp)? {
                    Response::Ok => {}
                    other => return Err(unexpected(other, name)),
                }
            }
        }
        Ok(())
    }

    /// Fetch the sketch stored under `name`.
    pub fn get(&mut self, name: &str) -> Result<HyperMinHash, ClientError> {
        match self.request(&Request::Get { name: name.to_string() })? {
            Response::Sketch(bytes) => Ok(format::decode(&bytes)?),
            other => Err(unexpected(other, name)),
        }
    }

    /// Fold `sketch` into the sketch stored under `name` (creates it if
    /// absent).
    pub fn merge(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), ClientError> {
        let request = Request::Merge { name: name.to_string(), sketch: format::encode(sketch) };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// Cardinality estimate of the sketch under `name`, computed
    /// server-side.
    pub fn card(&mut self, name: &str) -> Result<f64, ClientError> {
        match self.request(&Request::Card { name: name.to_string() })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(other, name)),
        }
    }

    /// Jaccard estimate between the sketches under `a` and `b`.
    pub fn jaccard(&mut self, a: &str, b: &str) -> Result<f64, ClientError> {
        let request = Request::Jaccard { a: a.to_string(), b: b.to_string() };
        match self.request(&request)? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(other, a)),
        }
    }

    /// Names of every stored sketch.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        match self.request(&Request::List)? {
            Response::Names(names) => Ok(names),
            other => Err(unexpected(other, "")),
        }
    }

    /// One page of stored names strictly after `after` in sorted order
    /// (empty `after` starts from the beginning), plus the server's
    /// partial-result flag. A page shorter than
    /// [`crate::proto::MAX_LIST_NAMES`] is the last page. A plain daemon
    /// always answers `partial: false`; a router sets it when a shard
    /// was unreachable and the page is missing that shard's names.
    pub fn list_page(&mut self, after: &str) -> Result<(Vec<String>, bool), ClientError> {
        match self.request(&Request::ListPage { after: after.to_string() })? {
            Response::NamesPage { names, partial } => Ok((names, partial)),
            other => Err(unexpected(other, after)),
        }
    }

    /// Remove the sketch stored under `name` (a durable tombstone). The
    /// rebalance release step; NOT_FOUND means this replica never held
    /// (or already released) the name.
    pub fn delete(&mut self, name: &str) -> Result<(), ClientError> {
        match self.request(&Request::Delete { name: name.to_string() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// The server's health snapshot (queue depth, shed count, fsck
    /// status, read-only flag).
    pub fn health(&mut self) -> Result<Health, ClientError> {
        match self.request(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(unexpected(other, "")),
        }
    }

    /// Scrub counters plus one page of quarantined names strictly after
    /// `after` in sorted order (empty `after` starts from the
    /// beginning). With `trigger` set the server first runs one full
    /// synchronous scrub pass over every committed record, so the
    /// returned counters reflect it; triggering is refused READ_ONLY on
    /// a degraded server (repair compacts, which writes), but a pure
    /// status query (`trigger: false`) always answers — a degraded
    /// replica must still be able to enumerate its fence for
    /// read-repair. A page shorter than
    /// [`crate::proto::MAX_SCRUB_PAGE`] is the last page.
    pub fn scrub(&mut self, trigger: bool, after: &str) -> Result<ScrubReport, ClientError> {
        match self.request(&Request::Scrub { trigger, after: after.to_string() })? {
            Response::Scrub(report) => Ok(report),
            other => Err(unexpected(other, after)),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, "")),
        }
    }

    /// One page of replication digests: `(name, checksum)` pairs for
    /// names strictly after `after` in sorted order (empty `after`
    /// starts at the beginning). A page shorter than
    /// [`crate::proto::MAX_DIGEST_ENTRIES`] is the last page.
    pub fn digests(&mut self, after: &str) -> Result<Vec<DigestEntry>, ClientError> {
        match self.request(&Request::Digest { after: after.to_string() })? {
            Response::Digests(entries) => Ok(entries),
            other => Err(unexpected(other, after)),
        }
    }

    /// Pull stored sketch payloads for `names`. The server answers the
    /// longest *prefix* of the request that fits its frame budget, so
    /// the reply may be shorter than the request — re-request the
    /// remainder. An entry with an empty payload means the name vanished
    /// since the digest was taken.
    pub fn sync(&mut self, names: &[String]) -> Result<Vec<SyncEntry>, ClientError> {
        match self.request(&Request::Sync { names: names.to_vec() })? {
            Response::Sketches(entries) => Ok(entries),
            other => Err(unexpected(other, "")),
        }
    }

    /// Fold an already-encoded sketch payload into `name` (creating it
    /// if absent). The replication engine's apply path: the payload came
    /// off another replica's wire and is deliberately *not* decoded
    /// here — the receiving server validates it before any write, so a
    /// hostile peer payload dies there as a typed BAD_SKETCH, never as a
    /// local panic.
    pub fn merge_raw(&mut self, name: &str, payload: &[u8]) -> Result<(), ClientError> {
        let request = Request::Merge { name: name.to_string(), sketch: payload.to_vec() };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// Store an already-encoded sketch payload under `name`, replacing
    /// any existing sketch. Like [`Client::merge_raw`], the payload is
    /// forwarded undecoded — the router's pass-through path; validation
    /// happens at the receiving server.
    pub fn put_raw(&mut self, name: &str, payload: &[u8]) -> Result<(), ClientError> {
        let request = Request::Put { name: name.to_string(), sketch: payload.to_vec() };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// Fetch the *encoded* sketch payload under `name`, undecoded — the
    /// router's pass-through path (a forwarded GET need not pay a
    /// decode/re-encode just to move bytes).
    pub fn get_raw(&mut self, name: &str) -> Result<Vec<u8>, ClientError> {
        match self.request(&Request::Get { name: name.to_string() })? {
            Response::Sketch(bytes) => Ok(bytes),
            other => Err(unexpected(other, name)),
        }
    }

    /// Forward one already-validated BATCH_PUT frame verbatim: raw
    /// configuration bytes and owned items, single frame, no re-chunking
    /// — the router's pass-through path. Callers that build batches from
    /// scratch should use [`Client::batch_put`], which validates and
    /// chunks.
    pub fn batch_put_raw(
        &mut self,
        name: &str,
        (p, q, r): (u8, u8, u8),
        algorithm: u8,
        seed: u64,
        items: &[Vec<u8>],
    ) -> Result<(), ClientError> {
        let request = Request::BatchPut {
            name: name.to_string(),
            p,
            q,
            r,
            algorithm,
            seed,
            items: items.to_vec(),
        };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Submit up to [`MAX_PIPELINE_DEPTH`] requests as one pipelined
    /// batch: all frames leave in a single vectored write, and the
    /// replies come back strictly in request order (ordering is the
    /// protocol's correlation mechanism — there are no tags).
    ///
    /// Returns the decoded reply for each request, *including* typed
    /// per-op conditions (`Response::Expired`, `Response::ReadOnly`,
    /// `Response::Err`) in their slots, so one op's refusal never hides
    /// its neighbors' results; apply [`typed_response`] per slot for
    /// single-shot semantics. Call-level errors cover what fails the
    /// whole batch: transport failures after retries, a BUSY shed, a
    /// spent deadline, and [`ClientError::PipelineOverflow`] for a
    /// batch deeper than the cap (refused before any bytes move — a
    /// deeper write without draining replies can deadlock on full
    /// kernel buffers).
    ///
    /// Transient failures retry the *whole batch* under the configured
    /// backoff policy, which is safe for the same reason single-op
    /// retries are: every operation is idempotent. A pinned deadline
    /// (or [`ClientOptions::op_budget`]) stamps each attempt's
    /// remaining budget on every frame of the batch.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        if requests.len() > MAX_PIPELINE_DEPTH {
            return Err(ClientError::PipelineOverflow {
                submitted: requests.len(),
                max: MAX_PIPELINE_DEPTH,
            });
        }
        let deadline = self.deadline.or_else(|| self.opts.op_budget.map(|b| Instant::now() + b));
        let budget = self.opts.budget.clone();
        // Without a deadline the bodies are attempt-invariant: encode once.
        let flat_bodies: Option<Vec<Vec<u8>>> = if deadline.is_none() {
            Some(requests.iter().map(|r| encode_request_budget(r, 0)).collect())
        } else {
            None
        };
        let mut retry = self.opts.retry.clone();
        let result = retry.run_gated(
            |_attempt| {
                let bodies = if let Some(bodies) = &flat_bodies {
                    bodies.clone()
                } else {
                    let d = deadline
                        .expect("invariant: flat_bodies is None only when a deadline is set");
                    let Some(ms) = remaining_budget_ms(d) else {
                        return Err(expired_error());
                    };
                    requests.iter().map(|r| encode_request_budget(r, ms)).collect()
                };
                self.exchange_pipelined(&bodies)
            },
            || match &budget {
                Some(b) if !b.try_spend() => Err(budget_error()),
                _ => Ok(()),
            },
        );
        match result {
            Ok(frames) => {
                // One deposit per wire exchange, not per frame: the
                // budget prices exchanges, and a batch is one exchange.
                if let Some(b) = &budget {
                    b.record_success();
                }
                let mut replies = Vec::with_capacity(frames.len());
                for frame in &frames {
                    match decode_response(frame) {
                        Ok(resp) => replies.push(resp),
                        Err(e) => {
                            // An unparseable reply poisons the stream;
                            // reconnect next call rather than guessing
                            // at framing.
                            self.conn = None;
                            return Err(ClientError::BadReply(e.to_string()));
                        }
                    }
                }
                Ok(replies)
            }
            Err(e) if is_busy(&e) => Err(ClientError::Busy),
            Err(e) if is_expired(&e) => Err(ClientError::Expired),
            Err(e) if is_budget_denial(&e) => Err(ClientError::RetryBudgetExhausted),
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Send one request, retrying transient transport failures and BUSY
    /// sheds under the configured backoff policy. When a deadline is
    /// pinned (or [`ClientOptions::op_budget`] set), every attempt
    /// stamps its *remaining* budget on the wire and the call expires
    /// locally once it hits zero; when a shared [`RetryBudget`] is
    /// configured, each retry (never the first attempt) must buy a
    /// token.
    fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let deadline =
            self.deadline.or_else(|| self.opts.op_budget.map(|b| Instant::now() + b));
        let budget = self.opts.budget.clone();
        // Without a deadline the body is attempt-invariant: encode once.
        let flat_body = if deadline.is_none() {
            Some(encode_request_budget(request, 0))
        } else {
            None
        };
        // Clone per call: `run_gated` consumes jitter state; cloning
        // keeps each call's schedule starting from the policy's seed,
        // deterministic under test.
        let mut retry = self.opts.retry.clone();
        let result = retry.run_gated(
            |_attempt| {
                let body = if let Some(body) = &flat_body {
                    body.clone()
                } else {
                    let d = deadline
                        .expect("invariant: flat_body is None only when a deadline is set");
                    let Some(ms) = remaining_budget_ms(d) else {
                        return Err(expired_error());
                    };
                    encode_request_budget(request, ms)
                };
                self.exchange(&body)
            },
            || match &budget {
                Some(b) if !b.try_spend() => Err(budget_error()),
                _ => Ok(()),
            },
        );
        match result {
            Ok(frame) => {
                // The transport worked and the server answered: that is
                // the success a retry budget regenerates from, whatever
                // the answer says about the sketch.
                if let Some(b) = &budget {
                    b.record_success();
                }
                self.interpret(&frame)
            }
            Err(e) if is_busy(&e) => Err(ClientError::Busy),
            Err(e) if is_expired(&e) => Err(ClientError::Expired),
            Err(e) if is_budget_denial(&e) => Err(ClientError::RetryBudgetExhausted),
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// One wire exchange. Any failure drops the cached connection so the
    /// next attempt reconnects from scratch — half-exchanged streams are
    /// never reused. Disconnect shapes the kernel reports under
    /// non-transient kinds are reclassified here (see
    /// [`reclassify_disconnect`]) so they ride the retry loop.
    fn exchange(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        let result = self.try_exchange(body).map_err(reclassify_disconnect);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    fn try_exchange(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        let conn = self.ensure_conn()?;
        write_frame(conn, body)?;
        conn.flush()?;
        match read_frame(conn, MAX_FRAME_LEN) {
            Ok(Some(frame)) => {
                // A BUSY shed is followed by a server-side close; map it
                // to a transient error so the retry loop backs off.
                if decode_response(&frame) == Ok(Response::Busy) {
                    self.conn = None;
                    return Err(busy_error());
                }
                Ok(frame)
            }
            // EOF before a reply: the server hung up (shed without a
            // BUSY frame landing, or mid-restart). Transient.
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "server closed the connection before replying",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(FrameError::TooLarge { got, max }) => Err(io::Error::other(format!(
                "server sent an oversized frame ({got} > {max} bytes)"
            ))),
        }
    }

    /// One pipelined wire exchange: all request frames in one vectored
    /// write, then every reply read back in order. Like [`exchange`],
    /// any failure drops the cached connection — a half-drained pipeline
    /// is never reused.
    ///
    /// [`exchange`]: Client::exchange
    fn exchange_pipelined(&mut self, bodies: &[Vec<u8>]) -> io::Result<Vec<Vec<u8>>> {
        let result = self.try_exchange_pipelined(bodies).map_err(reclassify_disconnect);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    fn try_exchange_pipelined(&mut self, bodies: &[Vec<u8>]) -> io::Result<Vec<Vec<u8>>> {
        let conn = self.ensure_conn()?;
        write_frames_vectored(conn, bodies)?;
        let mut frames = Vec::with_capacity(bodies.len());
        for drained in 0..bodies.len() {
            match read_frame(conn, MAX_FRAME_LEN) {
                Ok(Some(frame)) => {
                    // A BUSY shed precedes any frame processing, so it
                    // can only be the first reply — but check every slot
                    // so a misbehaving server still maps to a transient
                    // error instead of a confusing per-op result.
                    if decode_response(&frame) == Ok(Response::Busy) {
                        self.conn = None;
                        return Err(busy_error());
                    }
                    frames.push(frame);
                }
                // EOF with replies outstanding: the server hung up (or
                // poisoned the tail for a frame we believed well-formed).
                // Transient — the whole batch is retried, which is safe
                // because every operation is idempotent.
                Ok(None) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        format!(
                            "server closed the connection mid-pipeline \
                             ({drained} of {} replies drained)",
                            bodies.len()
                        ),
                    ))
                }
                Err(FrameError::Io(e)) => return Err(e),
                Err(FrameError::TooLarge { got, max }) => {
                    return Err(io::Error::other(format!(
                        "server sent an oversized frame ({got} > {max} bytes)"
                    )))
                }
            }
        }
        Ok(frames)
    }

    /// Cached connection, dialing a fresh one if needed.
    fn ensure_conn(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.opts.connect_timeout)?;
            stream.set_read_timeout(Some(self.opts.read_timeout))?;
            stream.set_write_timeout(Some(self.opts.write_timeout))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("invariant: connection established above"))
    }

    /// Map a decoded reply onto the typed result surface.
    fn interpret(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        match decode_response(frame) {
            Ok(resp) => typed_response(resp),
            Err(e) => {
                // An unparseable reply poisons the stream; reconnect next
                // call rather than guessing at framing.
                self.conn = None;
                Err(ClientError::BadReply(e.to_string()))
            }
        }
    }
}

/// Map one decoded reply onto the typed result surface the single-shot
/// [`Client`] methods use: READ_ONLY, EXPIRED, NOT_FOUND and server
/// errors become their [`ClientError`] variants, everything else passes
/// through. [`Client::pipeline`] deliberately does *not* apply this per
/// slot — one op's typed refusal must not hide its neighbors' results —
/// so callers that want single-shot semantics per slot apply it
/// themselves.
pub fn typed_response(resp: Response) -> Result<Response, ClientError> {
    match resp {
        Response::ReadOnly => Err(ClientError::ReadOnly),
        // Final, not retried: a deadline that expired server-side has
        // expired for every future attempt too.
        Response::Expired => Err(ClientError::Expired),
        Response::Err { code: ErrCode::NotFound, message } => {
            Err(ClientError::NotFound(extract_name(&message)))
        }
        Response::Err { code, message } => Err(ClientError::Server { code, message }),
        resp => Ok(resp),
    }
}

/// Reclassify a mid-exchange disconnect as transient.
///
/// The kernel reports "the peer hung up on us" under several kinds the
/// store's [`hmh_store::is_transient`] does not cover: `UnexpectedEof`
/// (connection closed inside a reply frame), `BrokenPipe` (closed while
/// our request bytes were in flight), and `NotConnected` (closed before
/// the socket settled). For this protocol they all mean the same thing a
/// `ConnectionReset` means — the daemon restarted, deadlined us, or shed
/// load without a BUSY frame landing — and every operation the client
/// can send is idempotent (PUT overwrites, MERGE folds a fixed payload
/// into a max-register lattice, BATCH_PUT re-inserts items into a
/// sketch, reads read), so retrying an *ambiguous* outcome is safe even
/// if the first attempt actually committed. Wrapping (not replacing)
/// keeps the original error as `source()` for diagnostics.
fn reclassify_disconnect(e: io::Error) -> io::Error {
    match e.kind() {
        io::ErrorKind::UnexpectedEof | io::ErrorKind::BrokenPipe | io::ErrorKind::NotConnected => {
            io::Error::new(io::ErrorKind::ConnectionReset, e)
        }
        _ => e,
    }
}

/// Pull the sketch name back out of a NOT_FOUND message ("no sketch
/// named \"x\"") — best effort; falls back to the whole message.
fn extract_name(message: &str) -> String {
    message.split('"').nth(1).map_or_else(|| message.to_string(), str::to_string)
}

fn unexpected(resp: Response, context: &str) -> ClientError {
    ClientError::BadReply(format!("unexpected response variant for {context:?}: {resp:?}"))
}

/// A client over an *ordered list* of replicas that fails over between
/// them: each operation gets a per-op attempt budget, and any attempt
/// that dies for a reason another replica could answer — a transport
/// failure after the single-node retries, a BUSY shed, a read-only
/// refusal — rotates to the next replica in the ring and tries again.
///
/// Failover is only sound because every operation is idempotent: PUT
/// overwrites, MERGE folds a fixed payload into a max-register lattice
/// (Algorithm 2's union — applying it twice is the same as once),
/// BATCH_PUT re-inserts items into a sketch, and reads read. An
/// ambiguous first attempt (request sent, reply lost) that actually
/// committed is therefore indistinguishable from one that did not, and
/// retrying against a *different* replica merely creates divergence that
/// anti-entropy is already required to repair. Server-reported
/// [`ClientError::NotFound`] and typed errors are final — every healthy
/// replica would answer the same, so rotating would only spend the
/// budget on identical refusals.
pub struct FailoverClient {
    replicas: Vec<Client>,
    breakers: Vec<Breaker>,
    current: usize,
    attempts: u32,
    /// Logical operation counter: the breakers' clock. Advances on every
    /// operation, including ones refused with an open breaker, so a sick
    /// group keeps aging toward its next half-open probe.
    ops: u64,
    /// Shared retry budget (taken from the options): rotations beyond
    /// the first attempt must buy a token, so N concurrent callers
    /// facing one down replica spend one bounded pool, not N budgets.
    budget: Option<Arc<RetryBudget>>,
    /// Where to count operations refused because every breaker was open
    /// (a router aggregates this into its HEALTH `breaker_open` field).
    breaker_refusals: Option<Arc<AtomicU64>>,
}

impl FailoverClient {
    /// Failover client over `addrs` (tried in order, starting at the
    /// first) with default options and an attempt budget of one try per
    /// replica plus one.
    ///
    /// # Panics
    /// With an empty address list — a client with no one to call is a
    /// configuration bug, not a runtime state.
    pub fn connect(addrs: &[SocketAddr]) -> Self {
        let attempts = u32::try_from(addrs.len()).unwrap_or(u32::MAX).saturating_add(1);
        Self::with_options(addrs, ClientOptions::default(), attempts)
    }

    /// Failover client with explicit per-replica options and a per-op
    /// attempt budget (each attempt is one full single-replica call,
    /// including that replica's own transient-retry backoff). A
    /// [`ClientOptions::budget`] in `opts` is shared: the inner clients
    /// draw from it for transport retries and the failover loop draws
    /// from it for rotations.
    ///
    /// # Panics
    /// With an empty address list.
    pub fn with_options(addrs: &[SocketAddr], opts: ClientOptions, attempts: u32) -> Self {
        assert!(!addrs.is_empty(), "failover client needs at least one replica address");
        let budget = opts.budget.clone();
        let replicas: Vec<Client> =
            addrs.iter().map(|&addr| Client::with_options(addr, opts.clone())).collect();
        let breakers = vec![Breaker::new(); replicas.len()];
        Self { replicas, breakers, current: 0, attempts: attempts.max(1), ops: 0, budget, breaker_refusals: None }
    }

    /// Count breaker-open refusals into `counter` (shared with the
    /// owner's health surface).
    #[must_use]
    pub fn with_breaker_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.breaker_refusals = Some(counter);
        self
    }

    /// Pin (or clear) an absolute deadline on every replica client, so
    /// whichever replica a failover lands on stamps the same caller's
    /// remaining budget.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        for replica in &mut self.replicas {
            replica.set_deadline(deadline);
        }
    }

    /// The replica the next operation will try first.
    pub fn current_addr(&self) -> SocketAddr {
        self.replicas[self.current].addr()
    }

    /// Replicas whose breaker is currently open (observability).
    pub fn open_breakers(&self) -> usize {
        self.breakers.iter().filter(|b| !b.admits(self.ops)).count()
    }

    /// Store `sketch` under `name` on whichever replica answers.
    pub fn put(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), ClientError> {
        self.with_failover(|c| c.put(name, sketch))
    }

    /// Fold `sketch` into `name` on whichever replica answers.
    pub fn merge(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), ClientError> {
        self.with_failover(|c| c.merge(name, sketch))
    }

    /// Ingest raw items into `name` on whichever replica answers. One
    /// logical call may span several frames; a failover mid-stream can
    /// replay frames against the new replica, which is safe because
    /// item insertion is idempotent.
    pub fn batch_put(
        &mut self,
        name: &str,
        params: HmhParams,
        oracle: RandomOracle,
        items: &[&[u8]],
    ) -> Result<(), ClientError> {
        self.with_failover(|c| c.batch_put(name, params, oracle, items))
    }

    /// Fetch the sketch under `name` from whichever replica answers.
    pub fn get(&mut self, name: &str) -> Result<HyperMinHash, ClientError> {
        self.with_failover(|c| c.get(name))
    }

    /// Store an encoded payload under `name` on whichever replica
    /// answers (see [`Client::put_raw`]).
    pub fn put_raw(&mut self, name: &str, payload: &[u8]) -> Result<(), ClientError> {
        self.with_failover(|c| c.put_raw(name, payload))
    }

    /// Fold an encoded payload into `name` on whichever replica answers
    /// (see [`Client::merge_raw`]).
    pub fn merge_raw(&mut self, name: &str, payload: &[u8]) -> Result<(), ClientError> {
        self.with_failover(|c| c.merge_raw(name, payload))
    }

    /// Fetch the encoded payload under `name` from whichever replica
    /// answers (see [`Client::get_raw`]).
    pub fn get_raw(&mut self, name: &str) -> Result<Vec<u8>, ClientError> {
        self.with_failover(|c| c.get_raw(name))
    }

    /// Forward one BATCH_PUT frame to whichever replica answers (see
    /// [`Client::batch_put_raw`]); safe to replay across a failover
    /// because item insertion is idempotent.
    pub fn batch_put_raw(
        &mut self,
        name: &str,
        widths: (u8, u8, u8),
        algorithm: u8,
        seed: u64,
        items: &[Vec<u8>],
    ) -> Result<(), ClientError> {
        self.with_failover(|c| c.batch_put_raw(name, widths, algorithm, seed, items))
    }

    /// Submit a pipelined batch to whichever replica answers (see
    /// [`Client::pipeline`]). A replica that drops the connection with
    /// the pipeline half-drained fails the *whole batch* over to the
    /// next replica — safe because every operation is idempotent — and
    /// the rotation pays the same breaker and retry-budget costs as any
    /// other failover, so a flapping replica cannot turn batch depth
    /// into dial amplification.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        self.with_failover(|c| {
            let replies = c.pipeline(requests)?;
            // A READ_ONLY slot means this replica is in degraded mode —
            // exactly what single-op failover rotates on. Fail the whole
            // batch over so another replica can take the writes; reads
            // in the batch merely replay.
            if replies.iter().any(|r| matches!(r, Response::ReadOnly)) {
                return Err(ClientError::ReadOnly);
            }
            Ok(replies)
        })
    }

    /// Cardinality estimate from whichever replica answers.
    pub fn card(&mut self, name: &str) -> Result<f64, ClientError> {
        self.with_failover(|c| c.card(name))
    }

    /// Jaccard estimate from whichever replica answers.
    pub fn jaccard(&mut self, a: &str, b: &str) -> Result<f64, ClientError> {
        self.with_failover(|c| c.jaccard(a, b))
    }

    /// Stored names from whichever replica answers.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        self.with_failover(|c| c.list())
    }

    /// One page of stored names from whichever replica answers. Note the
    /// caveat failover always carries for listing: replicas converge
    /// through anti-entropy, so pages from different replicas may
    /// briefly disagree about very recent writes.
    pub fn list_page(&mut self, after: &str) -> Result<(Vec<String>, bool), ClientError> {
        self.with_failover(|c| c.list_page(after))
    }

    /// Health snapshot from whichever replica answers.
    pub fn health(&mut self) -> Result<Health, ClientError> {
        self.with_failover(|c| c.health())
    }

    /// Scrub status (or a triggered pass) from whichever replica
    /// answers (see [`Client::scrub`]). Note that scrub state is
    /// per-replica: a quarantine page from replica A says nothing about
    /// replica B, so callers that care *which* store was scrubbed
    /// should use a direct [`Client`] instead.
    pub fn scrub(&mut self, trigger: bool, after: &str) -> Result<ScrubReport, ClientError> {
        self.with_failover(|c| c.scrub(trigger, after))
    }

    /// Ask the *current* replica to drain and exit. Deliberately no
    /// failover: "shut down" rotated across the ring would take the
    /// whole cluster down one timeout at a time.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.replicas[self.current].shutdown()
    }

    /// Run `op` against the current replica, rotating on failures a
    /// different replica could survive, until it succeeds, fails
    /// finally, or the attempt budget runs out — which surfaces as the
    /// typed [`ClientError::AllReplicasDown`] carrying every attempt's
    /// error, so callers distinguish "the whole group is unreachable"
    /// from a single transport failure without string-matching.
    ///
    /// Two bounds layer on top of the per-op attempt budget. Each
    /// replica's circuit breaker must admit the attempt — with every
    /// breaker open the operation is refused *without one dial* as
    /// [`ClientError::BreakerOpen`]. And each rotation after the first
    /// attempt must buy a token from the shared [`RetryBudget`] (when
    /// configured), so concurrent callers cannot multiply a sick
    /// replica's cost.
    fn with_failover<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        self.ops += 1;
        let now = self.ops;
        let replica_count = self.replicas.len();
        let mut errors = Vec::new();
        for attempt in 0..self.attempts {
            // Next replica (in rotation order) whose breaker admits this
            // operation; all open means bounded refusal, zero dials.
            let admitted = (0..replica_count)
                .map(|i| (self.current + i) % replica_count)
                .find(|&i| self.breakers[i].admits(now));
            let Some(idx) = admitted else {
                if let Some(counter) = &self.breaker_refusals {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
                return Err(ClientError::BreakerOpen { replicas: replica_count });
            };
            self.current = idx;
            if attempt > 0 {
                if let Some(budget) = &self.budget {
                    if !budget.try_spend() {
                        return Err(ClientError::RetryBudgetExhausted);
                    }
                }
            }
            let replica = &mut self.replicas[idx];
            match op(replica) {
                // Worth a different replica: this one is unreachable,
                // overloaded, or refusing writes in degraded mode.
                Err(e @ (ClientError::Io(_) | ClientError::Busy | ClientError::ReadOnly)) => {
                    errors.push(format!("{}: {e}", replica.addr()));
                    self.breakers[idx].record_failure(now);
                    self.current = (idx + 1) % replica_count;
                }
                // A local refusal carries no evidence about this
                // replica's health; pass it through untouched.
                Err(e @ ClientError::RetryBudgetExhausted) => return Err(e),
                // Success, or a final answer every replica would repeat.
                // Either way the replica *answered*: its breaker closes.
                // (The inner client already deposited into the shared
                // budget for the successful exchange.)
                other => {
                    self.breakers[idx].record_success();
                    return other;
                }
            }
        }
        Err(ClientError::AllReplicasDown { attempts: self.attempts, last_errors: errors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_marker_survives_the_io_error_wrap() {
        let e = busy_error();
        assert!(is_busy(&e));
        assert!(hmh_store::is_transient(&e), "busy must ride the retry loop");
        assert!(!is_busy(&io::Error::new(io::ErrorKind::WouldBlock, "plain")));
    }

    #[test]
    fn mid_exchange_disconnects_reclassify_as_transient() {
        for kind in
            [io::ErrorKind::UnexpectedEof, io::ErrorKind::BrokenPipe, io::ErrorKind::NotConnected]
        {
            let wrapped = reclassify_disconnect(io::Error::new(kind, "peer went away"));
            assert_eq!(wrapped.kind(), io::ErrorKind::ConnectionReset, "{kind:?}");
            assert!(hmh_store::is_transient(&wrapped), "{kind:?} must ride the retry loop");
            let source = wrapped.get_ref().expect("invariant: original error kept as source");
            assert!(source.to_string().contains("peer went away"));
        }
        // Genuinely fatal kinds pass through untouched.
        let fatal = reclassify_disconnect(io::Error::new(io::ErrorKind::PermissionDenied, "no"));
        assert_eq!(fatal.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn not_found_name_extraction() {
        assert_eq!(extract_name("no sketch named \"events\""), "events");
        assert_eq!(extract_name("mangled"), "mangled");
    }

    #[test]
    fn client_errors_display_their_cause() {
        let e = ClientError::Server { code: ErrCode::Store, message: "disk on fire".into() };
        assert!(e.to_string().contains("disk on fire"));
        assert!(ClientError::Busy.to_string().contains("busy"));
        assert!(ClientError::ReadOnly.to_string().contains("read-only"));
        assert!(ClientError::Expired.to_string().contains("deadline"));
        assert!(ClientError::RetryBudgetExhausted.to_string().contains("retry budget"));
        assert!(ClientError::BreakerOpen { replicas: 3 }.to_string().contains("breaker"));
    }

    #[test]
    fn retry_budget_starts_full_and_denies_when_drained() {
        let b = RetryBudget::new(3, 100);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "fourth spend exceeds the 3-token cap");
        assert_eq!(b.exhausted(), 1);
        // 10 successes at 100 mt each buy exactly one more retry.
        for _ in 0..10 {
            b.record_success();
        }
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert_eq!(b.exhausted(), 2);
    }

    #[test]
    fn retry_budget_deposits_clamp_to_the_cap() {
        let b = RetryBudget::new(2, 1000);
        for _ in 0..100 {
            b.record_success();
        }
        assert_eq!(b.balance_millitokens(), 2000, "deposits never exceed the cap");
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn low_priority_spends_yield_once_the_bucket_is_half_drained() {
        let b = RetryBudget::new(4, 1000);
        // Full bucket: low-priority tolls (one deposit each) spend down
        // to (not below) half.
        assert!(b.try_spend_low());
        assert!(b.try_spend_low());
        assert!(!b.try_spend_low(), "below half: background traffic yields");
        assert_eq!(b.exhausted(), 0, "yields are not exhaustion");
        // Foreground still gets the bottom half.
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert_eq!(b.exhausted(), 1);
    }

    #[test]
    fn low_priority_toll_plus_success_deposit_is_net_zero() {
        let b = RetryBudget::new(10, 100);
        let full = b.balance_millitokens();
        for _ in 0..50 {
            assert!(b.try_spend_low(), "a repaying background loop never yields");
            b.record_success();
        }
        assert_eq!(b.balance_millitokens(), full, "toll + deposit must cancel");
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_probes_again() {
        let mut b = Breaker::new();
        assert!(b.admits(1));
        b.record_failure(1);
        b.record_failure(2);
        assert!(b.admits(3), "two failures stay closed");
        b.record_failure(3);
        assert!(!b.admits(4), "third consecutive failure opens it");
        assert!(b.admits(5), "first backoff skips one op, then half-open probe");
        // A failed probe doubles the skip.
        b.record_failure(5);
        assert!(!b.admits(6));
        assert!(!b.admits(7));
        assert!(b.admits(8));
        // A successful probe closes it fully.
        b.record_success();
        assert!(b.admits(9));
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn breaker_backoff_is_capped() {
        let mut b = Breaker::new();
        for op in 1..=64 {
            b.record_failure(op);
        }
        assert!(!b.admits(65));
        assert!(
            b.admits(64 + BREAKER_CAP_OPS + 1),
            "skip never exceeds BREAKER_CAP_OPS, so probes keep happening"
        );
    }

    #[test]
    fn remaining_budget_rounds_up_and_expires() {
        let soon = Instant::now() + Duration::from_micros(300);
        // Sub-millisecond remainder must stamp 1, never 0 ("no deadline").
        if let Some(ms) = remaining_budget_ms(soon) {
            assert_eq!(ms, 1);
        }
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(remaining_budget_ms(past), None);
        let far = Instant::now() + Duration::from_secs(60 * 60 * 48);
        assert_eq!(remaining_budget_ms(far), Some(MAX_BUDGET_MS), "clamped to the wire cap");
    }
}
