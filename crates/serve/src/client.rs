//! Client for the `hmh-serve` daemon: one connection, typed errors, and
//! budgeted jittered backoff on transient failures.
//!
//! The client reuses the store's [`RetryPolicy`] as its retry engine:
//! connect failures, deadlines, resets, and BUSY sheds all map onto
//! transient [`io::Error`]s and flow through the same jittered
//! exponential backoff with a total-time budget. Every protocol
//! operation is idempotent (PUT overwrites, MERGE folds a fixed
//! payload, reads read), so retrying after an ambiguous failure is
//! always safe.
//!
//! Failures the *server* reports deliberately — NOT_FOUND, READ_ONLY, a
//! store error — are not retried: they would fail the same way again.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use hmh_core::format::{self, FormatError};
use hmh_core::{HmhParams, HyperMinHash};
use hmh_hash::RandomOracle;
use hmh_store::RetryPolicy;

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, ErrCode, FrameError, Health, Request,
    Response, MAX_BATCH_ITEMS, MAX_FRAME_LEN, MAX_ITEM_LEN,
};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Per-read deadline on the connection.
    pub read_timeout: Duration,
    /// Per-write deadline on the connection.
    pub write_timeout: Duration,
    /// Backoff policy for transient failures (connect errors, deadlines,
    /// resets, and BUSY sheds).
    pub retry: RetryPolicy,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a client call failed, after retries.
#[derive(Debug)]
pub enum ClientError {
    /// The server shed the connection under load and backoff ran out.
    Busy,
    /// The server is in read-only degradation; writes are refused.
    ReadOnly,
    /// No sketch with this name.
    NotFound(String),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable error class from the wire.
        code: ErrCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A batch item exceeded the protocol's per-item ceiling.
    ItemTooLarge {
        /// Offending item length in bytes.
        len: usize,
        /// The protocol maximum.
        max: usize,
    },
    /// The server's reply could not be parsed (version skew or a
    /// corrupted stream).
    BadReply(String),
    /// A sketch payload failed to decode.
    Format(FormatError),
    /// Transport failure (connect, deadline, reset) after retries.
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy => write!(f, "server is shedding load (busy); retries exhausted"),
            ClientError::ReadOnly => write!(f, "server is read-only; write refused"),
            ClientError::NotFound(name) => write!(f, "no sketch named {name:?}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::ItemTooLarge { len, max } => {
                write!(f, "batch item is {len} bytes; the protocol caps items at {max}")
            }
            ClientError::BadReply(detail) => write!(f, "unparseable server reply: {detail}"),
            ClientError::Format(e) => write!(f, "sketch payload: {e}"),
            ClientError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Format(e) => Some(e),
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for ClientError {
    fn from(e: FormatError) -> Self {
        ClientError::Format(e)
    }
}

/// Marker wrapped in a transient [`io::Error`] so a BUSY shed rides the
/// retry loop like any other transient failure, yet stays
/// distinguishable from a real deadline once retries are exhausted.
#[derive(Debug)]
struct BusyMarker;

impl std::fmt::Display for BusyMarker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server shed the connection (busy)")
    }
}

impl std::error::Error for BusyMarker {}

fn busy_error() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, BusyMarker)
}

fn is_busy(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<BusyMarker>())
}

/// A connection to one daemon. Reconnects lazily after any transport
/// error, so one `Client` value survives server restarts.
pub struct Client {
    addr: SocketAddr,
    opts: ClientOptions,
    conn: Option<TcpStream>,
}

impl Client {
    /// Client for the daemon at `addr` with default options.
    pub fn connect(addr: SocketAddr) -> Self {
        Self::with_options(addr, ClientOptions::default())
    }

    /// Client with explicit options (tests shrink the deadlines and seed
    /// the retry jitter).
    pub fn with_options(addr: SocketAddr, opts: ClientOptions) -> Self {
        Self { addr, opts, conn: None }
    }

    /// Store `sketch` under `name`, replacing any existing sketch.
    pub fn put(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), ClientError> {
        let request = Request::Put { name: name.to_string(), sketch: format::encode(sketch) };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// Ingest raw items into the sketch stored under `name` server-side,
    /// creating it with `params`/`oracle` if absent.
    ///
    /// Items are streamed in protocol-capped frames ([`MAX_BATCH_ITEMS`]
    /// items of at most [`MAX_ITEM_LEN`] bytes each), so one call may
    /// issue several round-trips. Each frame is idempotent — re-inserting
    /// an item never changes a sketch — so retries after ambiguous
    /// transport failures stay safe. An empty `items` slice still sends
    /// one frame, creating the (empty) sketch if it does not exist.
    pub fn batch_put(
        &mut self,
        name: &str,
        params: HmhParams,
        oracle: RandomOracle,
        items: &[&[u8]],
    ) -> Result<(), ClientError> {
        if let Some(item) = items.iter().find(|item| item.len() > MAX_ITEM_LEN) {
            return Err(ClientError::ItemTooLarge { len: item.len(), max: MAX_ITEM_LEN });
        }
        let widths = [params.p(), params.q(), params.r()]
            .map(|w| u8::try_from(w).expect("invariant: register widths fit a byte"));
        let algorithm = format::algorithm_to_byte(oracle.algorithm());
        let mut chunks: Vec<&[&[u8]]> = items.chunks(MAX_BATCH_ITEMS).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        for chunk in chunks {
            let request = Request::BatchPut {
                name: name.to_string(),
                p: widths[0],
                q: widths[1],
                r: widths[2],
                algorithm,
                seed: oracle.seed(),
                items: chunk.iter().map(|item| item.to_vec()).collect(),
            };
            match self.request(&request)? {
                Response::Ok => {}
                other => return Err(unexpected(other, name)),
            }
        }
        Ok(())
    }

    /// Fetch the sketch stored under `name`.
    pub fn get(&mut self, name: &str) -> Result<HyperMinHash, ClientError> {
        match self.request(&Request::Get { name: name.to_string() })? {
            Response::Sketch(bytes) => Ok(format::decode(&bytes)?),
            other => Err(unexpected(other, name)),
        }
    }

    /// Fold `sketch` into the sketch stored under `name` (creates it if
    /// absent).
    pub fn merge(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), ClientError> {
        let request = Request::Merge { name: name.to_string(), sketch: format::encode(sketch) };
        match self.request(&request)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, name)),
        }
    }

    /// Cardinality estimate of the sketch under `name`, computed
    /// server-side.
    pub fn card(&mut self, name: &str) -> Result<f64, ClientError> {
        match self.request(&Request::Card { name: name.to_string() })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(other, name)),
        }
    }

    /// Jaccard estimate between the sketches under `a` and `b`.
    pub fn jaccard(&mut self, a: &str, b: &str) -> Result<f64, ClientError> {
        let request = Request::Jaccard { a: a.to_string(), b: b.to_string() };
        match self.request(&request)? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected(other, a)),
        }
    }

    /// Names of every stored sketch.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        match self.request(&Request::List)? {
            Response::Names(names) => Ok(names),
            other => Err(unexpected(other, "")),
        }
    }

    /// The server's health snapshot (queue depth, shed count, fsck
    /// status, read-only flag).
    pub fn health(&mut self) -> Result<Health, ClientError> {
        match self.request(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(unexpected(other, "")),
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, "")),
        }
    }

    /// Send one request, retrying transient transport failures and BUSY
    /// sheds under the configured backoff policy.
    fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let body = encode_request(request);
        // Clone per call: `run` consumes jitter state; cloning keeps each
        // call's schedule starting from the policy's seed, deterministic
        // under test.
        let mut retry = self.opts.retry.clone();
        let result = retry.run(|| self.exchange(&body));
        match result {
            Ok(frame) => self.interpret(&frame),
            Err(e) if is_busy(&e) => Err(ClientError::Busy),
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// One wire exchange. Any failure drops the cached connection so the
    /// next attempt reconnects from scratch — half-exchanged streams are
    /// never reused.
    fn exchange(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        let result = self.try_exchange(body);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    fn try_exchange(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.opts.connect_timeout)?;
            stream.set_read_timeout(Some(self.opts.read_timeout))?;
            stream.set_write_timeout(Some(self.opts.write_timeout))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(stream);
        }
        let conn = self.conn.as_mut().expect("invariant: connection established above");
        write_frame(conn, body)?;
        conn.flush()?;
        match read_frame(conn, MAX_FRAME_LEN) {
            Ok(Some(frame)) => {
                // A BUSY shed is followed by a server-side close; map it
                // to a transient error so the retry loop backs off.
                if decode_response(&frame) == Ok(Response::Busy) {
                    self.conn = None;
                    return Err(busy_error());
                }
                Ok(frame)
            }
            // EOF before a reply: the server hung up (shed without a
            // BUSY frame landing, or mid-restart). Transient.
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "server closed the connection before replying",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(FrameError::TooLarge { got, max }) => Err(io::Error::other(format!(
                "server sent an oversized frame ({got} > {max} bytes)"
            ))),
        }
    }

    /// Map a decoded reply onto the typed result surface.
    fn interpret(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        match decode_response(frame) {
            Ok(Response::ReadOnly) => Err(ClientError::ReadOnly),
            Ok(Response::Err { code: ErrCode::NotFound, message }) => {
                Err(ClientError::NotFound(extract_name(&message)))
            }
            Ok(Response::Err { code, message }) => Err(ClientError::Server { code, message }),
            Ok(resp) => Ok(resp),
            Err(e) => {
                // An unparseable reply poisons the stream; reconnect next
                // call rather than guessing at framing.
                self.conn = None;
                Err(ClientError::BadReply(e.to_string()))
            }
        }
    }
}

/// Pull the sketch name back out of a NOT_FOUND message ("no sketch
/// named \"x\"") — best effort; falls back to the whole message.
fn extract_name(message: &str) -> String {
    message.split('"').nth(1).map_or_else(|| message.to_string(), str::to_string)
}

fn unexpected(resp: Response, context: &str) -> ClientError {
    ClientError::BadReply(format!("unexpected response variant for {context:?}: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_marker_survives_the_io_error_wrap() {
        let e = busy_error();
        assert!(is_busy(&e));
        assert!(hmh_store::is_transient(&e), "busy must ride the retry loop");
        assert!(!is_busy(&io::Error::new(io::ErrorKind::WouldBlock, "plain")));
    }

    #[test]
    fn not_found_name_extraction() {
        assert_eq!(extract_name("no sketch named \"events\""), "events");
        assert_eq!(extract_name("mangled"), "mangled");
    }

    #[test]
    fn client_errors_display_their_cause() {
        let e = ClientError::Server { code: ErrCode::Store, message: "disk on fire".into() };
        assert!(e.to_string().contains("disk on fire"));
        assert!(ClientError::Busy.to_string().contains("busy"));
        assert!(ClientError::ReadOnly.to_string().contains("read-only"));
    }
}
