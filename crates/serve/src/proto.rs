//! The `HMS1` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     body length L (u32 LE), L ≤ MAX_FRAME_LEN
//! 4       L     body
//! ```
//!
//! A request body is `[PROTO_VERSION, opcode, fields…]`; a response body
//! is `[status, fields…]`. Variable-length fields carry their own length
//! prefixes (`u16` for names and messages, `u32` for sketch payloads),
//! and every declared length is validated against both a protocol
//! maximum and the bytes actually present *before* it is believed — an
//! untrusted length field can bound a loop, but it can never drive an
//! allocation or a read on its own. Frame bodies are likewise read in
//! bounded chunks, so memory grows only with bytes a peer actually
//! sends, never with what its header merely claims.
//!
//! Connections are *pipelined*: a client may have up to
//! [`MAX_PIPELINE_DEPTH`] request frames in flight on one connection,
//! and the server processes them strictly in receipt order and replies
//! in the same order — there are no tags or sequence numbers on the
//! wire, so ordering IS the correlation mechanism. Replies for one
//! batch are coalesced into a single vectored write
//! ([`write_frames_vectored`]): length prefixes and bodies become one
//! syscall instead of 2·k. Error handling is asymmetric by design: a
//! malformed frame poisons only the *tail* of its connection (replies
//! already queued for earlier frames are flushed, then the typed error,
//! then the connection closes), while transport failures drop the
//! connection outright. The failure matrix — truncation, garbage,
//! deadline, disconnect at any byte, now at any pipeline depth — is
//! pinned by `crates/serve/tests/chaos.rs` and
//! `crates/serve/tests/pipeline.rs`.

use std::fmt;
use std::io::{self, Read, Write};

use hmh_core::format::MAX_ENCODED_LEN;
use hmh_store::log::MAX_NAME_LEN;

/// Protocol version carried as the first body byte of every request.
pub const PROTO_VERSION: u8 = 1;

/// Protocol version for deadline-carrying requests: the body is
/// `[PROTO_VERSION_BUDGET, opcode, budget_ms (u32 LE), fields…]`, where
/// `budget_ms` is the *remaining* milliseconds the caller is still
/// willing to wait (0 means "no deadline", identical to a version-1
/// frame). Servers check the budget against time the request already
/// spent queued and answer a typed [`Response::Expired`] instead of
/// doing work whose caller has hung up; routers re-stamp the shrunk
/// remainder onto every fan-out leg. Version-1 frames stay fully
/// accepted — the two versions share one opcode space.
pub const PROTO_VERSION_BUDGET: u8 = 2;

/// Ceiling on a request's declared `budget_ms`: one day. A budget is a
/// deadline, not a length, but an absurd value is still a lying field —
/// rejected typed, like every other cap in this protocol.
pub const MAX_BUDGET_MS: u32 = 24 * 60 * 60 * 1000;

/// Hard ceiling on a frame body. Covers the largest legal sketch payload
/// plus two names and fixed fields, with slack; anything larger is a
/// lying length prefix, answered with a typed error and a closed
/// connection.
pub const MAX_FRAME_LEN: usize = MAX_ENCODED_LEN + 2 * MAX_NAME_LEN + 64;

/// Chunk size for reading frame bodies: allocation tracks received
/// bytes, not declared lengths.
const READ_CHUNK: usize = 64 * 1024;

/// Maximum request frames a client may have in flight on one connection
/// before reading any reply. The server guarantees in-order replies at
/// any depth it actually receives, but a client that writes more than
/// this many frames without draining replies can deadlock *itself*
/// (both sides blocked on full kernel buffers), so the client API
/// refuses deeper batches with a typed error instead of hanging.
pub const MAX_PIPELINE_DEPTH: usize = 32;

/// Cap on bytes [`FrameBuffer::fill_nonblocking`] will buffer ahead of
/// processing. Batching is opportunistic: frames beyond the cap simply
/// wait in the kernel for the next batch, so the cap bounds per-
/// connection memory without affecting correctness.
const PIPELINE_FILL_CAP: usize = 4 * READ_CHUNK;

/// Maximum items in one `BATCH_PUT` frame. Together with
/// [`MAX_ITEM_LEN`] this keeps a maximal batch (≈ 16 MiB) well under
/// [`MAX_FRAME_LEN`]; clients chunk longer streams into multiple frames.
pub const MAX_BATCH_ITEMS: usize = 16 * 1024;

/// Maximum byte length of one `BATCH_PUT` item.
pub const MAX_ITEM_LEN: usize = 1024;

/// Maximum digest entries one `DIGEST` response carries. Pagination (the
/// request's `after` cursor) covers stores with more names; the cap
/// keeps a worst-case page (max-length names) well under
/// [`MAX_FRAME_LEN`] and bounds what a lying count can make a reader
/// loop over.
pub const MAX_DIGEST_ENTRIES: usize = 2048;

/// Maximum names one `SYNC` request may ask for. The *response* is
/// additionally bounded by the frame budget: the server answers the
/// longest prefix of the requested names whose sketches fit one frame,
/// and the caller re-requests the rest.
pub const MAX_SYNC_NAMES: usize = 256;

/// Maximum names one paginated `LIST` response carries — the same
/// page contract as [`MAX_DIGEST_ENTRIES`]: names arrive in strictly
/// increasing order, a page shorter than the cap is the last page, and
/// a worst-case page (max-length names) stays well under
/// [`MAX_FRAME_LEN`]. The unpaginated `LIST` form survives as a fast
/// path for small stores.
pub const MAX_LIST_NAMES: usize = 2048;

/// Maximum quarantined names one `SCRUB` response carries. The same
/// page contract as [`MAX_DIGEST_ENTRIES`]: names arrive in strictly
/// increasing order after the request's cursor, and a page shorter
/// than the cap is the last page.
pub const MAX_SCRUB_PAGE: usize = 256;

/// Maximum peers a `HEALTH` response enumerates (and a daemon accepts).
pub const MAX_PEERS: usize = 64;

/// Maximum byte length of a peer address string in `HEALTH`.
pub const MAX_PEER_ADDR_LEN: usize = 256;

/// Request opcodes.
mod op {
    pub const PUT: u8 = 1;
    pub const GET: u8 = 2;
    pub const MERGE: u8 = 3;
    pub const CARD: u8 = 4;
    pub const JACCARD: u8 = 5;
    pub const LIST: u8 = 6;
    pub const HEALTH: u8 = 7;
    pub const SHUTDOWN: u8 = 8;
    pub const BATCH_PUT: u8 = 9;
    pub const DIGEST: u8 = 10;
    pub const SYNC: u8 = 11;
    pub const LIST_PAGE: u8 = 12;
    pub const DELETE: u8 = 13;
    pub const SCRUB: u8 = 14;
}

/// Response status bytes.
mod status {
    pub const OK: u8 = 0;
    pub const SKETCH: u8 = 1;
    pub const VALUE: u8 = 2;
    pub const NAMES: u8 = 3;
    pub const HEALTH: u8 = 4;
    pub const DIGESTS: u8 = 5;
    pub const SKETCHES: u8 = 6;
    pub const NAMES_PAGE: u8 = 7;
    pub const SCRUB: u8 = 8;
    pub const BUSY: u8 = 0x40;
    pub const READ_ONLY: u8 = 0x41;
    pub const EXPIRED: u8 = 0x42;
    pub const ERR: u8 = 0x7f;
}

/// Typed error codes carried by [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The request frame failed to parse.
    BadFrame,
    /// A length field exceeded a protocol maximum.
    TooLarge,
    /// Unsupported protocol version byte.
    BadVersion,
    /// Unknown opcode.
    UnknownOp,
    /// No sketch stored under the requested name.
    NotFound,
    /// The payload was not a decodable `HMH1` sketch.
    BadSketch,
    /// Sketch parameters are incompatible (merge/jaccard across configs).
    Incompatible,
    /// The store rejected the operation.
    Store,
    /// A routing tier could not reach the replica group that owns the
    /// requested name (all replicas down, or a scatter-gather shard
    /// deadlined). Unlike a transport error this is *final for this
    /// attempt*: the router already spent its failover budget.
    Unavailable,
    /// The requested record is quarantined: its stored bytes failed the
    /// checksum scrub and no valid copy survives locally. The name is
    /// fenced, never served torn — read-repair from a healthy replica
    /// (or any validated write) releases it.
    CorruptQuarantined,
    /// Anything else; the message says what.
    Other(u8),
}

impl ErrCode {
    /// Wire byte for this code.
    pub fn to_byte(self) -> u8 {
        match self {
            ErrCode::BadFrame => 1,
            ErrCode::TooLarge => 2,
            ErrCode::BadVersion => 3,
            ErrCode::UnknownOp => 4,
            ErrCode::NotFound => 5,
            ErrCode::BadSketch => 6,
            ErrCode::Incompatible => 7,
            ErrCode::Store => 8,
            ErrCode::Unavailable => 9,
            ErrCode::CorruptQuarantined => 10,
            ErrCode::Other(b) => b,
        }
    }

    /// Code for a wire byte (unknown bytes survive as [`ErrCode::Other`]).
    pub fn from_byte(b: u8) -> Self {
        match b {
            1 => ErrCode::BadFrame,
            2 => ErrCode::TooLarge,
            3 => ErrCode::BadVersion,
            4 => ErrCode::UnknownOp,
            5 => ErrCode::NotFound,
            6 => ErrCode::BadSketch,
            7 => ErrCode::Incompatible,
            8 => ErrCode::Store,
            9 => ErrCode::Unavailable,
            10 => ErrCode::CorruptQuarantined,
            other => ErrCode::Other(other),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store an encoded sketch under a name.
    Put {
        /// Target name.
        name: String,
        /// Encoded `HMH1` payload.
        sketch: Vec<u8>,
    },
    /// Fetch the encoded sketch stored under a name.
    Get {
        /// Stored name.
        name: String,
    },
    /// Merge an encoded sketch into the named one (creating it if absent).
    Merge {
        /// Target name.
        name: String,
        /// Encoded `HMH1` payload to fold in.
        sketch: Vec<u8>,
    },
    /// Cardinality estimate of a stored sketch.
    Card {
        /// Stored name.
        name: String,
    },
    /// Jaccard estimate between two stored sketches.
    Jaccard {
        /// First name.
        a: String,
        /// Second name.
        b: String,
    },
    /// Ingest a frame of raw items into the named sketch server-side,
    /// creating it with the given configuration if absent. Replaces one
    /// PUT round-trip per sketch with one frame per batch of items.
    BatchPut {
        /// Target name.
        name: String,
        /// Sketch precision `p` (bucket bits) used when creating.
        p: u8,
        /// Counter width `q` used when creating.
        q: u8,
        /// Mantissa width `r` used when creating.
        r: u8,
        /// Hash algorithm byte (the `HMH1` header encoding).
        algorithm: u8,
        /// Oracle seed.
        seed: u64,
        /// Raw item byte strings, each ≤ [`MAX_ITEM_LEN`]; at most
        /// [`MAX_BATCH_ITEMS`] per frame.
        items: Vec<Vec<u8>>,
    },
    /// All stored names in one frame (the small-store fast path; large
    /// stores should page with [`Request::ListPage`]).
    List,
    /// One page of stored names for bounded listing: names strictly
    /// greater than `after` (sorted), at most [`MAX_LIST_NAMES`] per
    /// page. An empty `after` starts from the first name; a page
    /// shorter than the cap is the last page.
    ListPage {
        /// Pagination cursor: return names strictly after this one.
        /// Empty means "from the beginning".
        after: String,
    },
    /// Remove the sketch stored under a name (a durable tombstone in
    /// the store log). The routing tier's rebalance *release* step —
    /// issued only after the destination group's copy is digest-verified.
    Delete {
        /// Stored name.
        name: String,
    },
    /// Service health and degradation state.
    Health,
    /// One page of per-key digests for anti-entropy: `(name, checksum)`
    /// pairs for stored names strictly greater than `after` (sorted),
    /// at most [`MAX_DIGEST_ENTRIES`] per page. An empty `after` starts
    /// from the first name.
    Digest {
        /// Pagination cursor: return names strictly after this one.
        /// Empty means "from the beginning".
        after: String,
    },
    /// Pull encoded sketches by name for anti-entropy. The response
    /// covers the longest *prefix* of `names` whose payloads fit one
    /// frame; callers re-request the remainder. A requested name that no
    /// longer exists answers with an empty payload.
    Sync {
        /// Names to fetch, at most [`MAX_SYNC_NAMES`].
        names: Vec<String>,
    },
    /// Trigger or query the corruption scrub. `trigger: true` asks the
    /// daemon to run one full scrub pass synchronously before
    /// answering; `trigger: false` reports current counters without
    /// doing work. Either way the reply carries one cursor-paginated
    /// page of quarantined names (strictly greater than `after`,
    /// sorted, at most [`MAX_SCRUB_PAGE`]) so read-repair and operators
    /// can enumerate the fence without an unbounded frame.
    Scrub {
        /// True to run a scrub pass before answering.
        trigger: bool,
        /// Pagination cursor for the quarantined-name page: return
        /// names strictly after this one; empty means "from the
        /// beginning".
        after: String,
    },
    /// Drain queued connections, then exit.
    Shutdown,
}

/// One `(name, checksum)` pair in a `DIGEST` response. The checksum is
/// xxHash64 over the stored encoded payload (seed
/// `hmh_store::log::DIGEST_SEED`), so equal checksums mean byte-equal
/// sketches up to hash collision — and anti-entropy convergence is
/// checked against exactly the bytes [`hmh_core::format::encode`]
/// produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestEntry {
    /// Stored sketch name.
    pub name: String,
    /// xxHash64 of the stored encoded payload.
    pub checksum: u64,
}

/// One `(name, payload)` pair in a `SYNC` response. An empty payload
/// means the name vanished between DIGEST and SYNC (deleted mid-round);
/// callers skip it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncEntry {
    /// Stored sketch name.
    pub name: String,
    /// Encoded `HMH1` payload; empty when the name no longer exists.
    pub payload: Vec<u8>,
}

/// The `SCRUB` response payload: lifetime scrub counters plus one page
/// of currently quarantined names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Full scrub passes completed since start.
    pub rounds: u64,
    /// Records whose checksums were re-verified since start.
    pub records: u64,
    /// Corrupt spans found on disk since start (open-time salvage and
    /// live scrub combined).
    pub corrupt_found: u64,
    /// Corrupt records restored — rewritten from the authoritative
    /// in-memory copy or released from quarantine by a validated write.
    pub repaired: u64,
    /// Names currently fenced in quarantine.
    pub quarantined: u64,
    /// Milliseconds since the last completed scrub pass; `u64::MAX`
    /// when no pass has completed yet.
    pub last_scrub_age_ms: u64,
    /// One page of quarantined names, sorted ascending, strictly after
    /// the request's cursor; at most [`MAX_SCRUB_PAGE`]. A page shorter
    /// than the cap is the last page.
    pub names: Vec<String>,
}

/// Replication health of one configured peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Last anti-entropy round against this peer succeeded.
    Healthy,
    /// Recent rounds failed, but not enough to declare the peer down.
    Suspect,
    /// Enough consecutive failures that sync attempts are backed off.
    Down,
}

impl PeerState {
    /// Wire byte for this state.
    pub fn to_byte(self) -> u8 {
        match self {
            PeerState::Healthy => 0,
            PeerState::Suspect => 1,
            PeerState::Down => 2,
        }
    }

    /// State for a wire byte.
    pub fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(PeerState::Healthy),
            1 => Ok(PeerState::Suspect),
            2 => Ok(PeerState::Down),
            other => Err(ProtoError::UnknownEnum(other)),
        }
    }
}

impl fmt::Display for PeerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerState::Healthy => write!(f, "healthy"),
            PeerState::Suspect => write!(f, "suspect"),
            PeerState::Down => write!(f, "down"),
        }
    }
}

/// Per-peer replication fields inside a `HEALTH` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerHealth {
    /// Peer address as configured (display form).
    pub addr: String,
    /// Current health state.
    pub state: PeerState,
    /// Anti-entropy rounds since the last successful sync with this
    /// peer; `u64::MAX` when no round has ever succeeded.
    pub last_sync_age: u64,
    /// Cumulative digest mismatches observed against this peer (keys
    /// pulled because their checksums diverged or were missing locally).
    pub mismatches: u64,
}

/// Service health snapshot (the HEALTH response payload).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Health {
    /// True once a store write error tripped read-only degradation.
    pub read_only: bool,
    /// Worker pool size.
    pub workers: u32,
    /// Accept queue capacity.
    pub queue_capacity: u32,
    /// Connections currently queued, waiting for a worker.
    pub queue_depth: u32,
    /// Connections currently being handled.
    pub active: u32,
    /// Connections shed with BUSY since start.
    pub shed: u64,
    /// Requests served since start.
    pub served: u64,
    /// Sketches currently stored.
    pub sketches: u64,
    /// True when the on-disk store scans clean right now.
    pub store_clean: bool,
    /// Corrupt regions the current on-disk scan quarantines.
    pub quarantined: u64,
    /// True when the current scan sees a torn tail.
    pub truncated_tail: bool,
    /// Anti-entropy rounds completed since start (0 when the daemon runs
    /// without replication).
    pub rounds: u64,
    /// Ring-config epoch a routing tier is serving (0 for a plain
    /// daemon: it routes nothing).
    pub route_epoch: u64,
    /// Sketch handoffs a routing tier completed through rebalance
    /// (copy-verify-release cycles); 0 for a plain daemon.
    pub route_handoffs: u64,
    /// Requests answered with a typed EXPIRED because their deadline
    /// budget was already spent (queue wait, or upstream hops) before
    /// any work was done.
    pub expired: u64,
    /// Operations refused because the process's shared retry budget was
    /// empty: for a daemon, anti-entropy rounds that yielded under load;
    /// for a router, shard retries denied mid-failover.
    pub retry_exhausted: u64,
    /// Operations short-circuited because every candidate replica's
    /// circuit breaker was open — bounded refusal instead of amplified
    /// dialing of a flapping peer.
    pub breaker_open: u64,
    /// Background scrub passes completed since start.
    pub scrub_rounds: u64,
    /// Records whose checksums the scrub re-verified since start.
    pub records_scrubbed: u64,
    /// Corrupt spans found on disk since start (open-time salvage and
    /// live scrub combined).
    pub corrupt_found: u64,
    /// Corrupt records restored from the in-memory copy or released
    /// from quarantine by a validated write.
    pub repaired: u64,
    /// Names currently fenced in quarantine (served as typed
    /// CORRUPT_QUARANTINED, awaiting read-repair).
    pub scrub_quarantined: u64,
    /// Milliseconds since the last completed scrub pass; `u64::MAX`
    /// when none has completed. A routing tier reports the *oldest*
    /// age across its shards.
    pub last_scrub_age_ms: u64,
    /// Configured replication peers and their health (empty when the
    /// daemon runs without replication). A routing tier reuses these
    /// slots for per-group liveness: one entry per replica group,
    /// `addr` naming the group.
    pub peers: Vec<PeerHealth>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The operation succeeded with nothing to return.
    Ok,
    /// An encoded sketch.
    Sketch(Vec<u8>),
    /// A scalar estimate.
    Value(f64),
    /// Stored names.
    Names(Vec<String>),
    /// One page of stored names (the `LIST_PAGE` reply): at most
    /// [`MAX_LIST_NAMES`] names in strictly increasing order. `partial`
    /// is set by a scatter-gathering router when one or more shards
    /// could not be reached within their deadline — the page is the
    /// union of the shards that answered, clearly marked degraded; a
    /// single daemon always answers `partial: false`.
    NamesPage {
        /// The page of names, sorted ascending.
        names: Vec<String>,
        /// True when the answer is missing unreachable shards' names.
        partial: bool,
    },
    /// Health snapshot.
    Health(Health),
    /// One page of per-key digests (the `DIGEST` reply).
    Digests(Vec<DigestEntry>),
    /// Encoded sketches pulled by name (the `SYNC` reply) — the longest
    /// prefix of the requested names that fits one frame.
    Sketches(Vec<SyncEntry>),
    /// Scrub counters plus one page of quarantined names (the `SCRUB`
    /// reply).
    Scrub(ScrubReport),
    /// The accept queue was full; try again later.
    Busy,
    /// The service is degraded to read-only; writes are refused.
    ReadOnly,
    /// The request's `budget_ms` was already spent when the server was
    /// ready to execute it; the work was not performed.
    Expired,
    /// The request failed.
    Err {
        /// Typed error code.
        code: ErrCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Body ended before a field it declared.
    Truncated {
        /// Bytes the field needed.
        expected: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// A declared length exceeded its protocol maximum.
    FieldTooLarge {
        /// Declared length.
        got: usize,
        /// The maximum for that field.
        max: usize,
    },
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown request opcode.
    UnknownOp(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// A name or message was not valid UTF-8, or a name was empty.
    BadString,
    /// An enumerated field (peer state) carried an unknown value.
    UnknownEnum(u8),
    /// Parse finished with bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated frame: field needs {expected} bytes, {got} remain")
            }
            ProtoError::FieldTooLarge { got, max } => {
                write!(f, "field length {got} exceeds protocol maximum {max}")
            }
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownOp(o) => write!(f, "unknown opcode {o}"),
            ProtoError::UnknownStatus(s) => write!(f, "unknown response status {s}"),
            ProtoError::BadString => write!(f, "name or message is empty or not valid UTF-8"),
            ProtoError::UnknownEnum(b) => write!(f, "unknown enum value {b}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// The error code a server reports for this parse failure.
    pub fn code(&self) -> ErrCode {
        match self {
            ProtoError::FieldTooLarge { .. } => ErrCode::TooLarge,
            ProtoError::BadVersion(_) => ErrCode::BadVersion,
            ProtoError::UnknownOp(_) => ErrCode::UnknownOp,
            _ => ErrCode::BadFrame,
        }
    }
}

/// Frame-level read failures, split so callers can answer a lying length
/// prefix with a typed response before hanging up.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (timeout, reset, truncation mid-body).
    Io(io::Error),
    /// The length prefix exceeded the frame ceiling.
    TooLarge {
        /// Declared body length.
        got: usize,
        /// The ceiling it exceeded.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
            FrameError::TooLarge { got, max } => {
                write!(f, "frame length {got} exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::TooLarge { .. } => None,
        }
    }
}

/// Write one frame (length prefix + body) and flush.
///
/// # Panics
/// If `body` exceeds [`MAX_FRAME_LEN`]; encoders cap every field, so a
/// larger body is a bug in this crate, not input-dependent.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    assert!(body.len() <= MAX_FRAME_LEN, "invariant: encoders cap frame bodies");
    let len = u32::try_from(body.len()).expect("invariant: MAX_FRAME_LEN < u32::MAX");
    // Prefix and body coalesce into one vectored write: one syscall per
    // frame on an unbuffered socket, not two.
    write_all_vectored(w, &[&len.to_le_bytes(), body])?;
    w.flush()
}

/// Write every segment, in order, completely — the vectored analogue of
/// `write_all`. Uses `write_vectored` so adjacent segments share a
/// syscall; transports without real vectored I/O fall back through
/// `Write::write_vectored`'s default implementation (a plain `write` of
/// the first non-empty segment), and short writes, `EINTR`, and the
/// fallback all converge on the same resume path: re-slice from the
/// current offset and continue.
fn write_all_vectored(w: &mut impl Write, segments: &[&[u8]]) -> io::Result<()> {
    let total: usize = segments.iter().map(|s| s.len()).sum();
    let mut written = 0usize;
    while written < total {
        // Rebuild the slice list from the current offset each pass.
        // O(segments) per resume, but resumes only happen on short
        // writes; the common case is a single pass.
        let mut skip = written;
        let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(segments.len());
        for seg in segments {
            if skip >= seg.len() {
                skip -= seg.len();
            } else {
                slices.push(io::IoSlice::new(&seg[skip..]));
                skip = 0;
            }
        }
        match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "failed to write frames"))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read one frame body. `Ok(None)` on clean EOF at a frame boundary;
/// [`FrameError::TooLarge`] when the length prefix exceeds `max` (the
/// body bytes are *not* read); I/O errors (including timeouts and
/// mid-body EOF) as [`FrameError::Io`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_buf).map_err(FrameError::Io)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max {
        return Err(FrameError::TooLarge { got: len, max });
    }
    // Grow with received bytes, not the declared length: a peer that
    // *claims* a huge body but sends nothing costs nothing but a read
    // timeout.
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(READ_CHUNK);
        // EINTR is a retry, not a failure — the same discipline
        // `read_exact_or_eof` applies to the prefix. Without it a
        // signal delivered mid-body (timer, SIGCHLD) tears down a
        // healthy connection and the half-read body with it.
        let n = match r.read(&mut chunk[..want]) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        };
        if n == 0 {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("frame truncated: {remaining} of {len} body bytes missing"),
            )));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    Ok(Some(body))
}

/// Fill `buf` exactly; `Ok(false)` on EOF before the first byte, errors
/// (UnexpectedEof) on EOF mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "frame truncated inside length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Write a batch of frames (each length prefix + body) as one vectored
/// write, then flush.
///
/// All 2·k segments — prefixes interleaved with bodies — are handed to
/// `write_vectored` together, so a batch of small frames costs one
/// syscall instead of 2·k. Transports without real vectored I/O are
/// covered by `Write::write_vectored`'s default implementation, which
/// degrades to a plain `write` of the first non-empty segment; the
/// outer loop then re-slices from the new offset, so short writes,
/// `EINTR`, and the fallback all converge on the same resume path.
///
/// # Panics
/// If any body exceeds [`MAX_FRAME_LEN`]; encoders cap every field, so
/// a larger body is a bug in this crate, not input-dependent.
pub fn write_frames_vectored(w: &mut impl Write, bodies: &[Vec<u8>]) -> io::Result<()> {
    if bodies.is_empty() {
        return Ok(());
    }
    let mut prefixes = Vec::with_capacity(bodies.len());
    for body in bodies {
        assert!(body.len() <= MAX_FRAME_LEN, "invariant: encoders cap frame bodies");
        let len = u32::try_from(body.len()).expect("invariant: MAX_FRAME_LEN < u32::MAX");
        prefixes.push(len.to_le_bytes());
    }
    let mut segments: Vec<&[u8]> = Vec::with_capacity(bodies.len() * 2);
    for (prefix, body) in prefixes.iter().zip(bodies) {
        segments.push(prefix);
        segments.push(body);
    }
    write_all_vectored(w, &segments)?;
    w.flush()
}

/// A per-connection frame reassembly buffer: the read side of
/// pipelining.
///
/// Holds bytes received but not yet consumed, so one `read` syscall
/// that happens to deliver several small frames (a client's vectored
/// burst typically arrives this way on localhost) yields them all
/// without further syscalls. [`read_frame_buffered`] is the blocking
/// path (semantically identical to [`read_frame`], buffer-aware);
/// [`fill_nonblocking`] opportunistically pulls whatever has already
/// arrived so a server can drain a batch without ever blocking on a
/// frame that was never sent.
///
/// [`read_frame_buffered`]: FrameBuffer::read_frame_buffered
/// [`fill_nonblocking`]: FrameBuffer::fill_nonblocking
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes received but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drop consumed bytes so the buffer tracks outstanding data only.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pop one frame if a complete one is buffered; `Ok(None)` when the
    /// buffer holds no complete frame (empty or a partial tail), without
    /// touching the transport. A buffered lying length prefix surfaces
    /// as [`FrameError::TooLarge`] exactly as [`read_frame`] would.
    pub fn take_frame(&mut self, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > max {
            return Err(FrameError::TooLarge { got: len, max });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(body))
    }

    /// Read one frame through the buffer, blocking until a complete
    /// frame, clean EOF, or transport error. Same contract as
    /// [`read_frame`]: `Ok(None)` on EOF at a frame boundary (nothing
    /// buffered), `TooLarge` before any body bytes are believed, I/O
    /// errors (timeouts, EOF inside a frame) as [`FrameError::Io`].
    pub fn read_frame_buffered(
        &mut self,
        r: &mut impl Read,
        max: usize,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        // Bounded by the transport: each pass either yields a buffered
        // frame or performs one read, which a caller's socket timeout
        // or EOF terminates.
        loop {
            if let Some(body) = self.take_frame(max)? {
                return Ok(Some(body));
            }
            self.compact();
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            match r.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    return if self.buffered() == 0 {
                        Ok(None)
                    } else {
                        Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("frame truncated: EOF with {old} bytes buffered"),
                        )))
                    };
                }
                Ok(n) => self.buf.truncate(old + n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => self.buf.truncate(old),
                Err(e) => {
                    self.buf.truncate(old);
                    return Err(FrameError::Io(e));
                }
            }
        }
    }

    /// Pull whatever bytes have *already arrived* on `stream` into the
    /// buffer without blocking, up to an internal cap
    /// (`PIPELINE_FILL_CAP`) that bounds per-connection memory. The
    /// socket is flipped to non-blocking for the duration and restored
    /// before returning. EOF observed here is not an error — buffered
    /// frames are still served, and the next blocking read reports it.
    pub fn fill_nonblocking(&mut self, stream: &std::net::TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let filled = self.fill_until_would_block(stream);
        let restored = stream.set_nonblocking(false);
        filled.and(restored)
    }

    fn fill_until_would_block(&mut self, stream: &std::net::TcpStream) -> io::Result<()> {
        let mut r: &std::net::TcpStream = stream;
        while self.buffered() < PIPELINE_FILL_CAP {
            self.compact();
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            match r.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    return Ok(());
                }
                Ok(n) => self.buf.truncate(old + n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.buf.truncate(old);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => self.buf.truncate(old),
                Err(e) => {
                    self.buf.truncate(old);
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Body encoding
// ---------------------------------------------------------------------

fn push_name(out: &mut Vec<u8>, name: &str) {
    assert!(
        !name.is_empty() && name.len() <= MAX_NAME_LEN,
        "invariant: callers validate names before encoding"
    );
    let len = u16::try_from(name.len()).expect("invariant: MAX_NAME_LEN fits u16");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

fn push_blob(out: &mut Vec<u8>, blob: &[u8]) {
    assert!(blob.len() <= MAX_ENCODED_LEN, "invariant: callers validate payload size");
    let len = u32::try_from(blob.len()).expect("invariant: MAX_ENCODED_LEN < u32::MAX");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(blob);
}

/// A pagination cursor: shaped like a name on the wire, but legitimately
/// empty ("start from the beginning").
fn push_cursor(out: &mut Vec<u8>, cursor: &str) {
    assert!(cursor.len() <= MAX_NAME_LEN, "invariant: cursors are stored names or empty");
    let len = u16::try_from(cursor.len()).expect("invariant: MAX_NAME_LEN fits u16");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(cursor.as_bytes());
}

fn push_message(out: &mut Vec<u8>, message: &str) {
    // Messages are server-generated; truncate defensively rather than
    // trust them to stay short.
    let bytes = message.as_bytes();
    let cut = bytes.len().min(1024);
    // Don't split a UTF-8 sequence at the cut.
    let cut = (0..=cut).rev().find(|&i| message.is_char_boundary(i)).unwrap_or(0);
    let len = u16::try_from(cut).expect("invariant: cut ≤ 1024");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&bytes[..cut]);
}

/// Encode a request body.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    match req {
        Request::Put { name, sketch } => {
            out.push(op::PUT);
            push_name(&mut out, name);
            push_blob(&mut out, sketch);
        }
        Request::Get { name } => {
            out.push(op::GET);
            push_name(&mut out, name);
        }
        Request::Merge { name, sketch } => {
            out.push(op::MERGE);
            push_name(&mut out, name);
            push_blob(&mut out, sketch);
        }
        Request::Card { name } => {
            out.push(op::CARD);
            push_name(&mut out, name);
        }
        Request::Jaccard { a, b } => {
            out.push(op::JACCARD);
            push_name(&mut out, a);
            push_name(&mut out, b);
        }
        Request::BatchPut { name, p, q, r, algorithm, seed, items } => {
            out.push(op::BATCH_PUT);
            push_name(&mut out, name);
            out.push(*p);
            out.push(*q);
            out.push(*r);
            out.push(*algorithm);
            out.extend_from_slice(&seed.to_le_bytes());
            assert!(items.len() <= MAX_BATCH_ITEMS, "invariant: callers cap batch item counts");
            let count = u32::try_from(items.len()).expect("invariant: MAX_BATCH_ITEMS < u32::MAX");
            out.extend_from_slice(&count.to_le_bytes());
            for item in items {
                assert!(item.len() <= MAX_ITEM_LEN, "invariant: callers cap item lengths");
                let len = u16::try_from(item.len()).expect("invariant: MAX_ITEM_LEN fits u16");
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(item);
            }
        }
        Request::Digest { after } => {
            out.push(op::DIGEST);
            push_cursor(&mut out, after);
        }
        Request::Sync { names } => {
            out.push(op::SYNC);
            assert!(names.len() <= MAX_SYNC_NAMES, "invariant: callers cap sync name counts");
            let count = u16::try_from(names.len()).expect("invariant: MAX_SYNC_NAMES fits u16");
            out.extend_from_slice(&count.to_le_bytes());
            for name in names {
                push_name(&mut out, name);
            }
        }
        Request::List => out.push(op::LIST),
        Request::ListPage { after } => {
            out.push(op::LIST_PAGE);
            push_cursor(&mut out, after);
        }
        Request::Delete { name } => {
            out.push(op::DELETE);
            push_name(&mut out, name);
        }
        Request::Scrub { trigger, after } => {
            out.push(op::SCRUB);
            out.push(u8::from(*trigger));
            push_cursor(&mut out, after);
        }
        Request::Health => out.push(op::HEALTH),
        Request::Shutdown => out.push(op::SHUTDOWN),
    }
    out
}

/// Encode a request body carrying a deadline budget.
///
/// A `budget_ms` of 0 means "no deadline" and produces the plain v1
/// body byte-for-byte, so budget-unaware callers and budget-aware
/// callers with no deadline stay indistinguishable on the wire. Any
/// other value produces a [`PROTO_VERSION_BUDGET`] body with the
/// budget spliced between the opcode and the fields.
pub fn encode_request_budget(req: &Request, budget_ms: u32) -> Vec<u8> {
    let mut out = encode_request(req);
    if budget_ms == 0 {
        return out;
    }
    debug_assert!(budget_ms <= MAX_BUDGET_MS, "invariant: callers clamp budgets to the cap");
    out[0] = PROTO_VERSION_BUDGET;
    out.splice(2..2, budget_ms.to_le_bytes());
    out
}

/// Encode a response body.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ok => out.push(status::OK),
        Response::Sketch(bytes) => {
            out.push(status::SKETCH);
            push_blob(&mut out, bytes);
        }
        Response::Value(v) => {
            out.push(status::VALUE);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Response::Names(names) => {
            out.push(status::NAMES);
            let count = u32::try_from(names.len()).expect("invariant: stored name count fits u32");
            out.extend_from_slice(&count.to_le_bytes());
            for name in names {
                push_name(&mut out, name);
            }
        }
        Response::NamesPage { names, partial } => {
            out.push(status::NAMES_PAGE);
            out.push(u8::from(*partial));
            assert!(names.len() <= MAX_LIST_NAMES, "invariant: servers cap list pages");
            let count = u16::try_from(names.len()).expect("invariant: MAX_LIST_NAMES fits u16");
            out.extend_from_slice(&count.to_le_bytes());
            for name in names {
                push_name(&mut out, name);
            }
        }
        Response::Health(h) => {
            out.push(status::HEALTH);
            out.push(u8::from(h.read_only));
            out.extend_from_slice(&h.workers.to_le_bytes());
            out.extend_from_slice(&h.queue_capacity.to_le_bytes());
            out.extend_from_slice(&h.queue_depth.to_le_bytes());
            out.extend_from_slice(&h.active.to_le_bytes());
            out.extend_from_slice(&h.shed.to_le_bytes());
            out.extend_from_slice(&h.served.to_le_bytes());
            out.extend_from_slice(&h.sketches.to_le_bytes());
            out.push(u8::from(h.store_clean));
            out.extend_from_slice(&h.quarantined.to_le_bytes());
            out.push(u8::from(h.truncated_tail));
            out.extend_from_slice(&h.rounds.to_le_bytes());
            out.extend_from_slice(&h.route_epoch.to_le_bytes());
            out.extend_from_slice(&h.route_handoffs.to_le_bytes());
            out.extend_from_slice(&h.expired.to_le_bytes());
            out.extend_from_slice(&h.retry_exhausted.to_le_bytes());
            out.extend_from_slice(&h.breaker_open.to_le_bytes());
            out.extend_from_slice(&h.scrub_rounds.to_le_bytes());
            out.extend_from_slice(&h.records_scrubbed.to_le_bytes());
            out.extend_from_slice(&h.corrupt_found.to_le_bytes());
            out.extend_from_slice(&h.repaired.to_le_bytes());
            out.extend_from_slice(&h.scrub_quarantined.to_le_bytes());
            out.extend_from_slice(&h.last_scrub_age_ms.to_le_bytes());
            assert!(h.peers.len() <= MAX_PEERS, "invariant: daemons cap peer lists");
            let count = u16::try_from(h.peers.len()).expect("invariant: MAX_PEERS fits u16");
            out.extend_from_slice(&count.to_le_bytes());
            for peer in &h.peers {
                assert!(
                    !peer.addr.is_empty() && peer.addr.len() <= MAX_PEER_ADDR_LEN,
                    "invariant: peer addresses are validated at configuration time"
                );
                let len =
                    u16::try_from(peer.addr.len()).expect("invariant: MAX_PEER_ADDR_LEN fits u16");
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(peer.addr.as_bytes());
                out.push(peer.state.to_byte());
                out.extend_from_slice(&peer.last_sync_age.to_le_bytes());
                out.extend_from_slice(&peer.mismatches.to_le_bytes());
            }
        }
        Response::Digests(entries) => {
            out.push(status::DIGESTS);
            assert!(entries.len() <= MAX_DIGEST_ENTRIES, "invariant: servers cap digest pages");
            let count =
                u16::try_from(entries.len()).expect("invariant: MAX_DIGEST_ENTRIES fits u16");
            out.extend_from_slice(&count.to_le_bytes());
            for entry in entries {
                push_name(&mut out, &entry.name);
                out.extend_from_slice(&entry.checksum.to_le_bytes());
            }
        }
        Response::Sketches(entries) => {
            out.push(status::SKETCHES);
            assert!(entries.len() <= MAX_SYNC_NAMES, "invariant: servers cap sync replies");
            let count = u16::try_from(entries.len()).expect("invariant: MAX_SYNC_NAMES fits u16");
            out.extend_from_slice(&count.to_le_bytes());
            for entry in entries {
                push_name(&mut out, &entry.name);
                push_blob(&mut out, &entry.payload);
            }
        }
        Response::Scrub(report) => {
            out.push(status::SCRUB);
            out.extend_from_slice(&report.rounds.to_le_bytes());
            out.extend_from_slice(&report.records.to_le_bytes());
            out.extend_from_slice(&report.corrupt_found.to_le_bytes());
            out.extend_from_slice(&report.repaired.to_le_bytes());
            out.extend_from_slice(&report.quarantined.to_le_bytes());
            out.extend_from_slice(&report.last_scrub_age_ms.to_le_bytes());
            assert!(report.names.len() <= MAX_SCRUB_PAGE, "invariant: servers cap scrub pages");
            let count = u16::try_from(report.names.len()).expect("invariant: MAX_SCRUB_PAGE fits u16");
            out.extend_from_slice(&count.to_le_bytes());
            for name in &report.names {
                push_name(&mut out, name);
            }
        }
        Response::Busy => out.push(status::BUSY),
        Response::ReadOnly => out.push(status::READ_ONLY),
        Response::Expired => out.push(status::EXPIRED),
        Response::Err { code, message } => {
            out.push(status::ERR);
            out.push(code.to_byte());
            push_message(&mut out, message);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Body decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated { expected: n, got: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn flag(&mut self) -> Result<bool, ProtoError> {
        Ok(self.u8()? != 0)
    }

    /// A name: u16 length (validated against [`MAX_NAME_LEN`] *before*
    /// any read), then that many UTF-8 bytes, non-empty.
    fn name(&mut self) -> Result<String, ProtoError> {
        let len = usize::from(self.u16()?);
        if len > MAX_NAME_LEN {
            return Err(ProtoError::FieldTooLarge { got: len, max: MAX_NAME_LEN });
        }
        if len == 0 {
            return Err(ProtoError::BadString);
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map(str::to_string).map_err(|_| ProtoError::BadString)
    }

    /// A pagination cursor: length-checked like a name but legitimately
    /// empty.
    fn cursor(&mut self) -> Result<String, ProtoError> {
        let len = usize::from(self.u16()?);
        if len > MAX_NAME_LEN {
            return Err(ProtoError::FieldTooLarge { got: len, max: MAX_NAME_LEN });
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map(str::to_string).map_err(|_| ProtoError::BadString)
    }

    /// A message string like [`Cursor::name`] but possibly empty.
    fn message(&mut self) -> Result<String, ProtoError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map(str::to_string).map_err(|_| ProtoError::BadString)
    }

    /// A batch item: u16 length validated against [`MAX_ITEM_LEN`] before
    /// any read. Unlike names, items are raw bytes and may be empty.
    fn item(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = usize::from(self.u16()?);
        if len > MAX_ITEM_LEN {
            return Err(ProtoError::FieldTooLarge { got: len, max: MAX_ITEM_LEN });
        }
        Ok(self.take(len)?.to_vec())
    }

    /// A sketch blob: u32 length validated against [`MAX_ENCODED_LEN`]
    /// before any read.
    fn blob(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_ENCODED_LEN {
            return Err(ProtoError::FieldTooLarge { got: len, max: MAX_ENCODED_LEN });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Decode a request body, discarding any deadline budget it carries.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtoError> {
    decode_request_budget(body).map(|(req, _)| req)
}

/// Decode a request body together with its deadline budget.
///
/// v1 bodies carry no budget and decode as `budget_ms = 0` ("no
/// deadline"). v2 ([`PROTO_VERSION_BUDGET`]) bodies carry a u32 budget
/// between the opcode and the fields; budgets above [`MAX_BUDGET_MS`]
/// are rejected as [`ProtoError::FieldTooLarge`] — a hostile frame must
/// not buy itself an unbounded deadline.
pub fn decode_request_budget(body: &[u8]) -> Result<(Request, u32), ProtoError> {
    let mut c = Cursor::new(body);
    let version = c.u8()?;
    if version != PROTO_VERSION && version != PROTO_VERSION_BUDGET {
        return Err(ProtoError::BadVersion(version));
    }
    let opcode = c.u8()?;
    let budget_ms = if version == PROTO_VERSION_BUDGET {
        let budget = c.u32()?;
        if budget > MAX_BUDGET_MS {
            return Err(ProtoError::FieldTooLarge {
                got: budget as usize,
                max: MAX_BUDGET_MS as usize,
            });
        }
        budget
    } else {
        0
    };
    let req = match opcode {
        op::PUT => Request::Put { name: c.name()?, sketch: c.blob()? },
        op::GET => Request::Get { name: c.name()? },
        op::MERGE => Request::Merge { name: c.name()?, sketch: c.blob()? },
        op::CARD => Request::Card { name: c.name()? },
        op::JACCARD => Request::Jaccard { a: c.name()?, b: c.name()? },
        op::BATCH_PUT => {
            let name = c.name()?;
            let p = c.u8()?;
            let q = c.u8()?;
            let r = c.u8()?;
            let algorithm = c.u8()?;
            let seed = c.u64()?;
            let count = c.u32()? as usize;
            if count > MAX_BATCH_ITEMS {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_BATCH_ITEMS });
            }
            // Bound the allocation by bytes present: each item costs ≥ 2
            // wire bytes, so a lying count fails fast on Truncated.
            let mut items = Vec::with_capacity(count.min(c.remaining() / 2 + 1));
            for _ in 0..count {
                items.push(c.item()?);
            }
            Request::BatchPut { name, p, q, r, algorithm, seed, items }
        }
        op::DIGEST => Request::Digest { after: c.cursor()? },
        op::SYNC => {
            let count = usize::from(c.u16()?);
            if count > MAX_SYNC_NAMES {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_SYNC_NAMES });
            }
            // Bound the allocation by bytes present: each name costs ≥ 3
            // wire bytes, so a lying count fails fast on Truncated.
            let mut names = Vec::with_capacity(count.min(c.remaining() / 3 + 1));
            for _ in 0..count {
                names.push(c.name()?);
            }
            Request::Sync { names }
        }
        op::LIST => Request::List,
        op::LIST_PAGE => Request::ListPage { after: c.cursor()? },
        op::DELETE => Request::Delete { name: c.name()? },
        op::SCRUB => Request::Scrub { trigger: c.flag()?, after: c.cursor()? },
        op::HEALTH => Request::Health,
        op::SHUTDOWN => Request::Shutdown,
        other => return Err(ProtoError::UnknownOp(other)),
    };
    c.finish()?;
    Ok((req, budget_ms))
}

/// Decode a response body.
pub fn decode_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(body);
    let resp = match c.u8()? {
        status::OK => Response::Ok,
        status::SKETCH => Response::Sketch(c.blob()?),
        status::VALUE => Response::Value(c.f64()?),
        status::NAMES => {
            let count = c.u32()? as usize;
            // Bound the loop by bytes present: each name costs ≥ 3 bytes
            // on the wire, so a lying count fails fast on Truncated.
            let mut names = Vec::with_capacity(count.min(c.remaining() / 3 + 1));
            for _ in 0..count {
                names.push(c.name()?);
            }
            Response::Names(names)
        }
        status::NAMES_PAGE => {
            let partial = c.flag()?;
            let count = usize::from(c.u16()?);
            if count > MAX_LIST_NAMES {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_LIST_NAMES });
            }
            // Bound the allocation by bytes present: each name costs ≥ 3
            // wire bytes, so a lying count fails fast on Truncated.
            let mut names = Vec::with_capacity(count.min(c.remaining() / 3 + 1));
            for _ in 0..count {
                names.push(c.name()?);
            }
            Response::NamesPage { names, partial }
        }
        status::HEALTH => {
            let mut h = Health {
                read_only: c.flag()?,
                workers: c.u32()?,
                queue_capacity: c.u32()?,
                queue_depth: c.u32()?,
                active: c.u32()?,
                shed: c.u64()?,
                served: c.u64()?,
                sketches: c.u64()?,
                store_clean: c.flag()?,
                quarantined: c.u64()?,
                truncated_tail: c.flag()?,
                rounds: c.u64()?,
                route_epoch: c.u64()?,
                route_handoffs: c.u64()?,
                expired: c.u64()?,
                retry_exhausted: c.u64()?,
                breaker_open: c.u64()?,
                scrub_rounds: c.u64()?,
                records_scrubbed: c.u64()?,
                corrupt_found: c.u64()?,
                repaired: c.u64()?,
                scrub_quarantined: c.u64()?,
                last_scrub_age_ms: c.u64()?,
                peers: Vec::new(),
            };
            let count = usize::from(c.u16()?);
            if count > MAX_PEERS {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_PEERS });
            }
            for _ in 0..count {
                let len = usize::from(c.u16()?);
                if len > MAX_PEER_ADDR_LEN {
                    return Err(ProtoError::FieldTooLarge { got: len, max: MAX_PEER_ADDR_LEN });
                }
                if len == 0 {
                    return Err(ProtoError::BadString);
                }
                let addr = std::str::from_utf8(c.take(len)?)
                    .map(str::to_string)
                    .map_err(|_| ProtoError::BadString)?;
                h.peers.push(PeerHealth {
                    addr,
                    state: PeerState::from_byte(c.u8()?)?,
                    last_sync_age: c.u64()?,
                    mismatches: c.u64()?,
                });
            }
            Response::Health(h)
        }
        status::DIGESTS => {
            let count = usize::from(c.u16()?);
            if count > MAX_DIGEST_ENTRIES {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_DIGEST_ENTRIES });
            }
            // Bound the allocation by bytes present: each entry costs
            // ≥ 11 wire bytes, so a lying count fails fast on Truncated.
            let mut entries = Vec::with_capacity(count.min(c.remaining() / 11 + 1));
            for _ in 0..count {
                entries.push(DigestEntry { name: c.name()?, checksum: c.u64()? });
            }
            Response::Digests(entries)
        }
        status::SKETCHES => {
            let count = usize::from(c.u16()?);
            if count > MAX_SYNC_NAMES {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_SYNC_NAMES });
            }
            let mut entries = Vec::with_capacity(count.min(c.remaining() / 7 + 1));
            for _ in 0..count {
                entries.push(SyncEntry { name: c.name()?, payload: c.blob()? });
            }
            Response::Sketches(entries)
        }
        status::SCRUB => {
            let mut report = ScrubReport {
                rounds: c.u64()?,
                records: c.u64()?,
                corrupt_found: c.u64()?,
                repaired: c.u64()?,
                quarantined: c.u64()?,
                last_scrub_age_ms: c.u64()?,
                names: Vec::new(),
            };
            let count = usize::from(c.u16()?);
            if count > MAX_SCRUB_PAGE {
                return Err(ProtoError::FieldTooLarge { got: count, max: MAX_SCRUB_PAGE });
            }
            // Bound the allocation by bytes present: each name costs ≥ 3
            // wire bytes, so a lying count fails fast on Truncated.
            report.names.reserve(count.min(c.remaining() / 3 + 1));
            for _ in 0..count {
                report.names.push(c.name()?);
            }
            Response::Scrub(report)
        }
        status::BUSY => Response::Busy,
        status::READ_ONLY => Response::ReadOnly,
        status::EXPIRED => Response::Expired,
        status::ERR => {
            let code = ErrCode::from_byte(c.u8()?);
            Response::Err { code, message: c.message()? }
        }
        other => return Err(ProtoError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = encode_request(&req);
        assert_eq!(decode_request(&body).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let body = encode_response(&resp);
        assert_eq!(decode_response(&body).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Put { name: "a".into(), sketch: vec![1, 2, 3] });
        round_trip_request(Request::Get { name: "日本語".into() });
        round_trip_request(Request::Merge { name: "m".into(), sketch: vec![0; 1000] });
        round_trip_request(Request::Card { name: "c".into() });
        round_trip_request(Request::Jaccard { a: "x".into(), b: "y".into() });
        round_trip_request(Request::List);
        round_trip_request(Request::ListPage { after: String::new() });
        round_trip_request(Request::ListPage { after: "resume-after-me".into() });
        round_trip_request(Request::Delete { name: "doomed".into() });
        round_trip_request(Request::Health);
        round_trip_request(Request::Scrub { trigger: false, after: String::new() });
        round_trip_request(Request::Scrub { trigger: true, after: "resume-after-me".into() });
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::BatchPut {
            name: "events".into(),
            p: 8,
            q: 6,
            r: 6,
            algorithm: 0,
            seed: 0xDEAD_BEEF,
            items: vec![b"alpha".to_vec(), Vec::new(), vec![0xff; MAX_ITEM_LEN]],
        });
        round_trip_request(Request::BatchPut {
            name: "empty-batch".into(),
            p: 4,
            q: 3,
            r: 4,
            algorithm: 3,
            seed: 0,
            items: Vec::new(),
        });
    }

    #[test]
    fn batch_put_adversarial_bodies_are_typed_errors() {
        let header = |count: u32| {
            let mut b = vec![PROTO_VERSION, op::BATCH_PUT];
            b.extend_from_slice(&2u16.to_le_bytes());
            b.extend_from_slice(b"bp");
            b.extend_from_slice(&[8, 6, 6, 0]); // p q r algorithm
            b.extend_from_slice(&7u64.to_le_bytes()); // seed
            b.extend_from_slice(&count.to_le_bytes());
            b
        };
        // Lying count: claims 1000 items, carries none.
        assert!(matches!(
            decode_request(&header(1000)),
            Err(ProtoError::Truncated { expected: 2, got: 0 })
        ));
        // Oversize batch: count over the protocol cap fails before any
        // item bytes are believed.
        let claim = u32::try_from(MAX_BATCH_ITEMS + 1).unwrap();
        assert_eq!(
            decode_request(&header(claim)),
            Err(ProtoError::FieldTooLarge {
                got: MAX_BATCH_ITEMS + 1,
                max: MAX_BATCH_ITEMS
            })
        );
        // Oversize item: length over MAX_ITEM_LEN is rejected unread.
        let mut b = header(1);
        b.extend_from_slice(&u16::try_from(MAX_ITEM_LEN + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_ITEM_LEN + 1, max: MAX_ITEM_LEN })
        );
        // Truncated item list: second item's bytes missing.
        let mut b = header(2);
        b.extend_from_slice(&3u16.to_le_bytes());
        b.extend_from_slice(b"abc");
        b.extend_from_slice(&9u16.to_le_bytes());
        b.extend_from_slice(b"shor"); // 4 of 9 declared bytes
        assert_eq!(decode_request(&b), Err(ProtoError::Truncated { expected: 9, got: 4 }));
        // Trailing junk after a complete batch.
        let mut b = header(1);
        b.extend_from_slice(&1u16.to_le_bytes());
        b.push(b'x');
        b.push(0);
        assert_eq!(decode_request(&b), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Ok);
        round_trip_response(Response::Sketch(vec![9; 321]));
        round_trip_response(Response::Value(0.123456789));
        round_trip_response(Response::Value(f64::NAN.to_bits() as f64)); // bit-exact via to_le_bytes
        round_trip_response(Response::Names(vec!["a".into(), "bb".into(), "ccc".into()]));
        round_trip_response(Response::Names(Vec::new()));
        round_trip_response(Response::NamesPage {
            names: vec!["a".into(), "bb".into(), "ccc".into()],
            partial: false,
        });
        round_trip_response(Response::NamesPage { names: Vec::new(), partial: true });
        round_trip_response(Response::NamesPage {
            names: (0..MAX_LIST_NAMES).map(|i| format!("n{i:04}")).collect(),
            partial: false,
        });
        round_trip_response(Response::Health(Health {
            read_only: true,
            workers: 4,
            queue_capacity: 16,
            queue_depth: 3,
            active: 2,
            shed: 99,
            served: 12345,
            sketches: 7,
            store_clean: false,
            quarantined: 2,
            truncated_tail: true,
            rounds: 41,
            route_epoch: 3,
            route_handoffs: 1729,
            expired: 314,
            retry_exhausted: 27,
            breaker_open: 9,
            scrub_rounds: 6,
            records_scrubbed: 4242,
            corrupt_found: 3,
            repaired: 2,
            scrub_quarantined: 1,
            last_scrub_age_ms: 1500,
            peers: vec![
                PeerHealth {
                    addr: "10.0.0.7:7700".into(),
                    state: PeerState::Healthy,
                    last_sync_age: 0,
                    mismatches: 12,
                },
                PeerHealth {
                    addr: "10.0.0.8:7700".into(),
                    state: PeerState::Down,
                    last_sync_age: u64::MAX,
                    mismatches: 0,
                },
            ],
        }));
        round_trip_response(Response::Busy);
        round_trip_response(Response::ReadOnly);
        round_trip_response(Response::Expired);
        round_trip_response(Response::Err {
            code: ErrCode::NotFound,
            message: "no such sketch".into(),
        });
        round_trip_response(Response::Err { code: ErrCode::Other(200), message: String::new() });
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = Request::Put { name: "frame".into(), sketch: vec![5; 100] };
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&req)).unwrap();
        write_frame(&mut wire, &encode_request(&Request::List)).unwrap();
        let mut r = &wire[..];
        let one = read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap();
        let two = read_frame(&mut r, MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(decode_request(&one).unwrap(), req);
        assert_eq!(decode_request(&two).unwrap(), Request::List);
        assert!(read_frame(&mut r, MAX_FRAME_LEN).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_typed_and_unread() {
        // Length prefix claims 4 GiB; nothing but the prefix is consumed.
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(b"leftover");
        let mut r = &wire[..];
        match read_frame(&mut r, MAX_FRAME_LEN) {
            Err(FrameError::TooLarge { got, max }) => {
                assert_eq!(got, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(r, b"leftover", "body bytes must not be consumed");
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Get { name: "x".into() })).unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            let err = read_frame(&mut r, MAX_FRAME_LEN);
            assert!(
                matches!(err, Err(FrameError::Io(ref e)) if e.kind() == io::ErrorKind::UnexpectedEof),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn adversarial_bodies_are_typed_errors() {
        // Version/opcode garbage.
        assert_eq!(decode_request(&[]), Err(ProtoError::Truncated { expected: 1, got: 0 }));
        assert_eq!(decode_request(&[9, op::LIST]), Err(ProtoError::BadVersion(9)));
        assert_eq!(decode_request(&[PROTO_VERSION, 0xEE]), Err(ProtoError::UnknownOp(0xEE)));
        // Name length lies: claims 5000 (over cap) and 500 (unbacked).
        let mut b = vec![PROTO_VERSION, op::GET];
        b.extend_from_slice(&5000u16.to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: 5000, max: MAX_NAME_LEN })
        );
        let mut b = vec![PROTO_VERSION, op::GET];
        b.extend_from_slice(&500u16.to_le_bytes());
        b.extend_from_slice(b"abc");
        assert_eq!(decode_request(&b), Err(ProtoError::Truncated { expected: 500, got: 3 }));
        // Empty and non-UTF-8 names.
        let mut b = vec![PROTO_VERSION, op::GET];
        b.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(decode_request(&b), Err(ProtoError::BadString));
        let mut b = vec![PROTO_VERSION, op::GET];
        b.extend_from_slice(&2u16.to_le_bytes());
        b.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_request(&b), Err(ProtoError::BadString));
        // Sketch blob claiming more than the format ceiling.
        let mut b = vec![PROTO_VERSION, op::PUT];
        b.extend_from_slice(&1u16.to_le_bytes());
        b.push(b'x');
        let claim = match u32::try_from(MAX_ENCODED_LEN + 1) {
            Ok(claim) => claim,
            Err(_) => unreachable!("test constant fits u32"),
        };
        b.extend_from_slice(&claim.to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_ENCODED_LEN + 1, max: MAX_ENCODED_LEN })
        );
        // Trailing junk after a complete request.
        let mut b = encode_request(&Request::List);
        b.push(0);
        assert_eq!(decode_request(&b), Err(ProtoError::TrailingBytes(1)));
        // Response side: unknown status, lying name count.
        assert_eq!(decode_response(&[0x33]), Err(ProtoError::UnknownStatus(0x33)));
        let mut b = vec![3u8]; // NAMES
        b.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(decode_response(&b), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn list_page_adversarial_bodies_are_typed_errors() {
        // LIST_PAGE request with an oversized cursor length claim.
        let mut b = vec![PROTO_VERSION, op::LIST_PAGE];
        b.extend_from_slice(&u16::try_from(MAX_NAME_LEN + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_NAME_LEN + 1, max: MAX_NAME_LEN })
        );
        // NAMES_PAGE response with a count over the page cap: rejected
        // before any name bytes are believed.
        let mut b = vec![status::NAMES_PAGE, 0];
        b.extend_from_slice(&u16::try_from(MAX_LIST_NAMES + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_response(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_LIST_NAMES + 1, max: MAX_LIST_NAMES })
        );
        // NAMES_PAGE response lying about its name count.
        let mut b = vec![status::NAMES_PAGE, 1];
        b.extend_from_slice(&100u16.to_le_bytes());
        b.extend_from_slice(&1u16.to_le_bytes());
        b.push(b'x');
        assert!(matches!(decode_response(&b), Err(ProtoError::Truncated { .. })));
        // DELETE request with an empty name.
        let mut b = vec![PROTO_VERSION, op::DELETE];
        b.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(decode_request(&b), Err(ProtoError::BadString));
    }

    #[test]
    fn random_garbage_never_panics() {
        // Seeded LCG garbage of many lengths through both decoders: every
        // outcome is Ok or a typed error, never a panic.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in [0usize, 1, 2, 3, 7, 16, 64, 257, 1024] {
            for _ in 0..32 {
                let body: Vec<u8> = (0..len).map(|_| next()).collect();
                let _ = decode_request(&body);
                let _ = decode_response(&body);
            }
        }
    }

    #[test]
    fn replication_messages_round_trip() {
        round_trip_request(Request::Digest { after: String::new() });
        round_trip_request(Request::Digest { after: "cursor-name".into() });
        round_trip_request(Request::Sync { names: vec!["a".into(), "b".into()] });
        round_trip_request(Request::Sync {
            names: (0..MAX_SYNC_NAMES).map(|i| format!("n{i}")).collect(),
        });
        round_trip_response(Response::Digests(Vec::new()));
        round_trip_response(Response::Digests(vec![
            DigestEntry { name: "alpha".into(), checksum: 0 },
            DigestEntry { name: "beta".into(), checksum: u64::MAX },
        ]));
        round_trip_response(Response::Sketches(Vec::new()));
        round_trip_response(Response::Sketches(vec![
            SyncEntry { name: "full".into(), payload: vec![7; 513] },
            SyncEntry { name: "vanished".into(), payload: Vec::new() },
        ]));
        round_trip_response(Response::Health(Health {
            rounds: u64::MAX,
            peers: Vec::new(),
            ..Health::default()
        }));
    }

    #[test]
    fn peer_state_bytes_round_trip() {
        for state in [PeerState::Healthy, PeerState::Suspect, PeerState::Down] {
            assert_eq!(PeerState::from_byte(state.to_byte()).unwrap(), state);
        }
        assert_eq!(PeerState::from_byte(3), Err(ProtoError::UnknownEnum(3)));
        assert_eq!(PeerState::from_byte(0xFF), Err(ProtoError::UnknownEnum(0xFF)));
    }

    #[test]
    fn replication_adversarial_bodies_are_typed_errors() {
        // DIGEST with an oversized cursor length claim.
        let mut b = vec![PROTO_VERSION, op::DIGEST];
        b.extend_from_slice(&u16::try_from(MAX_NAME_LEN + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_NAME_LEN + 1, max: MAX_NAME_LEN })
        );
        // SYNC request claiming more names than the protocol cap.
        let mut b = vec![PROTO_VERSION, op::SYNC];
        b.extend_from_slice(&u16::try_from(MAX_SYNC_NAMES + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_SYNC_NAMES + 1, max: MAX_SYNC_NAMES })
        );
        // SYNC request whose name count lies about the bytes behind it.
        let mut b = vec![PROTO_VERSION, op::SYNC];
        b.extend_from_slice(&5u16.to_le_bytes());
        b.extend_from_slice(&1u16.to_le_bytes());
        b.push(b'x');
        assert!(matches!(decode_request(&b), Err(ProtoError::Truncated { .. })));
        // DIGESTS response lying about its entry count.
        let mut b = vec![status::DIGESTS];
        b.extend_from_slice(&100u16.to_le_bytes());
        assert!(matches!(decode_response(&b), Err(ProtoError::Truncated { .. })));
        // DIGESTS response with a count over the page cap.
        let mut b = vec![status::DIGESTS];
        b.extend_from_slice(&u16::try_from(MAX_DIGEST_ENTRIES + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_response(&b),
            Err(ProtoError::FieldTooLarge {
                got: MAX_DIGEST_ENTRIES + 1,
                max: MAX_DIGEST_ENTRIES
            })
        );
        // SKETCHES response whose payload claims more than the format ceiling.
        let mut b = vec![status::SKETCHES];
        b.extend_from_slice(&1u16.to_le_bytes());
        b.extend_from_slice(&1u16.to_le_bytes());
        b.push(b'x');
        let claim = u32::try_from(MAX_ENCODED_LEN + 1).expect("invariant: test constant fits u32");
        b.extend_from_slice(&claim.to_le_bytes());
        assert_eq!(
            decode_response(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_ENCODED_LEN + 1, max: MAX_ENCODED_LEN })
        );
        // HEALTH response with a peer count over the cap.
        let mut b = encode_response(&Response::Health(Health::default()));
        let n = b.len();
        b[n - 2..].copy_from_slice(&u16::try_from(MAX_PEERS + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_response(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_PEERS + 1, max: MAX_PEERS })
        );
        // HEALTH response with an unknown peer-state byte.
        let mut b = encode_response(&Response::Health(Health {
            peers: vec![PeerHealth {
                addr: "p".into(),
                state: PeerState::Healthy,
                last_sync_age: 0,
                mismatches: 0,
            }],
            ..Health::default()
        }));
        let state_off = b.len() - 17; // state byte sits before two trailing u64s
        assert_eq!(b[state_off], PeerState::Healthy.to_byte());
        b[state_off] = 9;
        assert_eq!(decode_response(&b), Err(ProtoError::UnknownEnum(9)));
    }

    #[test]
    fn budget_frames_round_trip_and_v1_decodes_as_no_deadline() {
        // Every opcode carries a budget unchanged through a v2 body.
        let reqs = [
            Request::Put { name: "a".into(), sketch: vec![1, 2, 3] },
            Request::Get { name: "g".into() },
            Request::Merge { name: "m".into(), sketch: vec![0; 64] },
            Request::Card { name: "c".into() },
            Request::Jaccard { a: "x".into(), b: "y".into() },
            Request::Digest { after: String::new() },
            Request::Sync { names: vec!["s".into()] },
            Request::List,
            Request::ListPage { after: "after".into() },
            Request::Delete { name: "d".into() },
            Request::Health,
            Request::Scrub { trigger: true, after: "cursor".into() },
            Request::Shutdown,
            Request::BatchPut {
                name: "b".into(),
                p: 8,
                q: 6,
                r: 6,
                algorithm: 0,
                seed: 7,
                items: vec![b"one".to_vec()],
            },
        ];
        for req in reqs {
            for budget in [1u32, 250, MAX_BUDGET_MS] {
                let body = encode_request_budget(&req, budget);
                assert_eq!(body[0], PROTO_VERSION_BUDGET);
                assert_eq!(decode_request_budget(&body).unwrap(), (req.clone(), budget));
                // Budget-unaware decoding still understands the request.
                assert_eq!(decode_request(&body).unwrap(), req);
            }
            // Budget 0 is byte-identical to the v1 encoding: no deadline
            // is not a distinguishable wire state.
            let body = encode_request_budget(&req, 0);
            assert_eq!(body, encode_request(&req));
            assert_eq!(decode_request_budget(&body).unwrap(), (req, 0));
        }
    }

    #[test]
    fn budget_adversarial_bodies_are_typed_errors() {
        // A budget over the cap must not buy an unbounded deadline.
        let mut b = vec![PROTO_VERSION_BUDGET, op::LIST];
        b.extend_from_slice(&(MAX_BUDGET_MS + 1).to_le_bytes());
        assert_eq!(
            decode_request_budget(&b),
            Err(ProtoError::FieldTooLarge {
                got: (MAX_BUDGET_MS + 1) as usize,
                max: MAX_BUDGET_MS as usize,
            })
        );
        // A v2 header cut off mid-budget is Truncated, not misparsed.
        let b = [PROTO_VERSION_BUDGET, op::LIST, 0x10, 0x00];
        assert!(matches!(decode_request_budget(&b), Err(ProtoError::Truncated { .. })));
        // Unknown versions stay rejected; v2 is the only extension.
        assert_eq!(decode_request_budget(&[3, op::LIST]), Err(ProtoError::BadVersion(3)));
    }

    #[test]
    fn health_overload_counters_round_trip() {
        round_trip_response(Response::Health(Health {
            expired: u64::MAX,
            retry_exhausted: 1,
            breaker_open: 0xDEAD_BEEF,
            ..Health::default()
        }));
    }

    #[test]
    fn health_scrub_counters_round_trip() {
        round_trip_response(Response::Health(Health {
            scrub_rounds: 7,
            records_scrubbed: u64::MAX,
            corrupt_found: 11,
            repaired: 10,
            scrub_quarantined: 1,
            last_scrub_age_ms: u64::MAX,
            ..Health::default()
        }));
    }

    #[test]
    fn scrub_messages_round_trip() {
        round_trip_request(Request::Scrub { trigger: false, after: String::new() });
        round_trip_request(Request::Scrub { trigger: true, after: "after-me".into() });
        round_trip_response(Response::Scrub(ScrubReport::default()));
        round_trip_response(Response::Scrub(ScrubReport {
            rounds: 3,
            records: 999,
            corrupt_found: 4,
            repaired: 3,
            quarantined: 1,
            last_scrub_age_ms: u64::MAX,
            names: vec!["fenced-a".into(), "fenced-b".into()],
        }));
        round_trip_response(Response::Scrub(ScrubReport {
            names: (0..MAX_SCRUB_PAGE).map(|i| format!("q{i:03}")).collect(),
            ..ScrubReport::default()
        }));
        round_trip_response(Response::Err {
            code: ErrCode::CorruptQuarantined,
            message: "sketch \"x\" is quarantined".into(),
        });
    }

    #[test]
    fn scrub_adversarial_bodies_are_typed_errors() {
        // SCRUB request with an oversized cursor length claim.
        let mut b = vec![PROTO_VERSION, op::SCRUB, 1];
        b.extend_from_slice(&u16::try_from(MAX_NAME_LEN + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_request(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_NAME_LEN + 1, max: MAX_NAME_LEN })
        );
        // SCRUB request cut off before the cursor.
        let b = vec![PROTO_VERSION, op::SCRUB];
        assert!(matches!(decode_request(&b), Err(ProtoError::Truncated { .. })));
        // SCRUB response with a name count over the page cap: rejected
        // before any name bytes are believed.
        let mut b = encode_response(&Response::Scrub(ScrubReport::default()));
        let n = b.len();
        b[n - 2..].copy_from_slice(&u16::try_from(MAX_SCRUB_PAGE + 1).unwrap().to_le_bytes());
        assert_eq!(
            decode_response(&b),
            Err(ProtoError::FieldTooLarge { got: MAX_SCRUB_PAGE + 1, max: MAX_SCRUB_PAGE })
        );
        // SCRUB response lying about its name count.
        let mut b = encode_response(&Response::Scrub(ScrubReport::default()));
        let n = b.len();
        b[n - 2..].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(decode_response(&b), Err(ProtoError::Truncated { .. })));
        // Trailing junk after a complete report.
        let mut b = encode_response(&Response::Scrub(ScrubReport::default()));
        b.push(0);
        assert_eq!(decode_response(&b), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn error_code_bytes_round_trip() {
        for code in [
            ErrCode::BadFrame,
            ErrCode::TooLarge,
            ErrCode::BadVersion,
            ErrCode::UnknownOp,
            ErrCode::NotFound,
            ErrCode::BadSketch,
            ErrCode::Incompatible,
            ErrCode::Store,
            ErrCode::Unavailable,
            ErrCode::CorruptQuarantined,
            ErrCode::Other(77),
        ] {
            assert_eq!(ErrCode::from_byte(code.to_byte()), code);
        }
    }
}
