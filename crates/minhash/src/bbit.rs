//! b-bit MinHash fingerprints (Li & König \[16\]).
//!
//! §1.3–1.4: after computing full-width minima, keep only the lowest `b`
//! bits of each. Excellent space for pairwise Jaccard — `O(ε⁻²)` with the
//! collision-corrected estimator — but, as §1.4 stresses, the fingerprint
//! is *post-hoc*: generation still needs `log n`-bit registers, and two
//! fingerprints cannot be merged into the fingerprint of the union (the
//! low bits of `min(A)` and `min(B)` say nothing about `min(A∪B)` when the
//! minima differ). Accordingly this type offers **no union or insert** —
//! the API gap is the point, demonstrated in the `bbit` experiment.

use crate::common::MinHashError;
use crate::khash::KHashMinHash;
use hmh_hll::registers::BitPacked;

/// A b-bit MinHash fingerprint of `k` registers.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BBitMinHash {
    b: u32,
    seed_tag: u64,
    registers: BitPacked,
}

impl BBitMinHash {
    /// Fingerprint an existing full-width MinHash sketch by keeping the low
    /// `b` bits of each register.
    ///
    /// # Panics
    /// If `b ∉ 1..=32`.
    pub fn from_minhash(source: &KHashMinHash, b: u32) -> Self {
        assert!((1..=32).contains(&b), "b = {b} out of 1..=32");
        let mask = if b == 32 { u32::MAX } else { (1u32 << b) - 1 };
        let mut registers = BitPacked::new(b, source.k());
        for (i, &v) in source.registers().iter().enumerate() {
            registers.set(i, (v as u32) & mask);
        }
        Self { b, seed_tag: source.oracle().seed(), registers }
    }

    /// Bits per register.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Number of registers.
    pub fn k(&self) -> usize {
        self.registers.len()
    }

    /// Fingerprint size in bytes.
    pub fn byte_size(&self) -> usize {
        (self.k() * self.b as usize).div_ceil(8)
    }

    /// Register `i`'s retained low bits (exposed so experiments can model
    /// *wrong* uses of the fingerprint, e.g. the naive merge the
    /// composability demonstration needs).
    pub fn register(&self, i: usize) -> u32 {
        self.registers.get(i)
    }

    /// Jaccard estimate with the random-collision correction:
    /// `E[match fraction] = C + (1 − C)·t` with `C = 2^{-b}`, so
    /// `t̂ = (M − C) / (1 − C)`, clamped to `[0, 1]`.
    ///
    /// (Li & König's full estimator replaces `C` with density-dependent
    /// `A₁`/`A₂` terms; the uniform `2^{-b}` approximation is what their
    /// analysis reduces to for sets much smaller than the hash space, and
    /// is the variant HyperMinHash's mantissa analysis parallels.)
    pub fn jaccard(&self, other: &Self) -> Result<f64, MinHashError> {
        if self.b != other.b || self.k() != other.k() {
            return Err(MinHashError::ParameterMismatch { what: "b or k differs" });
        }
        if self.seed_tag != other.seed_tag {
            return Err(MinHashError::OracleMismatch);
        }
        let matching = (0..self.k())
            .filter(|&i| self.registers.get(i) == other.registers.get(i))
            .count();
        let m_frac = matching as f64 / self.k() as f64;
        let c = 2f64.powi(-(self.b as i32));
        Ok(((m_frac - c) / (1.0 - c)).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmh_hash::RandomOracle;

    fn minhash_range(lo: u64, hi: u64, k: usize) -> KHashMinHash {
        let mut s = KHashMinHash::new(k, RandomOracle::default());
        for i in lo..hi {
            s.insert(&i);
        }
        s
    }

    #[test]
    fn fingerprint_size() {
        let mh = minhash_range(0, 100, 256);
        let fp = BBitMinHash::from_minhash(&mh, 1);
        assert_eq!(fp.byte_size(), 32); // 256 × 1 bit
        let fp4 = BBitMinHash::from_minhash(&mh, 4);
        assert_eq!(fp4.byte_size(), 128);
    }

    #[test]
    fn corrected_estimate_matches_truth() {
        // J = 1/3 with 50% overlap.
        let a = minhash_range(0, 2000, 1024);
        let b = minhash_range(1000, 3000, 1024);
        let full_j = a.jaccard(&b).unwrap();
        for bits in [1, 2, 4, 8] {
            let fa = BBitMinHash::from_minhash(&a, bits);
            let fb = BBitMinHash::from_minhash(&b, bits);
            let j = fa.jaccard(&fb).unwrap();
            // The corrected b-bit estimate should track the full estimate.
            let tol = if bits == 1 { 0.12 } else { 0.08 };
            assert!(
                (j - full_j).abs() < tol,
                "b={bits}: {j} vs full {full_j}"
            );
        }
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let a = minhash_range(0, 5000, 2048);
        let b = minhash_range(100_000, 105_000, 2048);
        let fa = BBitMinHash::from_minhash(&a, 2);
        let fb = BBitMinHash::from_minhash(&b, 2);
        let j = fa.jaccard(&fb).unwrap();
        assert!(j < 0.05, "j = {j}");
    }

    #[test]
    fn identical_sets_estimate_one() {
        let a = minhash_range(0, 1000, 256);
        let fa = BBitMinHash::from_minhash(&a, 1);
        assert_eq!(fa.jaccard(&fa.clone()).unwrap(), 1.0);
    }

    #[test]
    fn mismatched_fingerprints_error() {
        let a = minhash_range(0, 100, 64);
        let f1 = BBitMinHash::from_minhash(&a, 1);
        let f2 = BBitMinHash::from_minhash(&a, 2);
        assert!(f1.jaccard(&f2).is_err());

        let mut other = KHashMinHash::new(64, RandomOracle::with_seed(7));
        other.insert(&1u64);
        let f3 = BBitMinHash::from_minhash(&other, 1);
        assert_eq!(f1.jaccard(&f3).unwrap_err(), MinHashError::OracleMismatch);
    }
}
