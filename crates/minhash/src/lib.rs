//! Classic MinHash variants — the paper's baselines.
//!
//! §1.1 catalogs the three standard variants, all implemented here against
//! the shared random-oracle substrate, plus the b-bit fingerprint of §1.3:
//!
//! * [`KHashMinHash`] — **k-hash-functions**: `k` independent (seed-derived)
//!   hash functions, one minimum each; `Θ(nk)` sketch generation.
//! * [`BottomK`] — **k-minimum-values** (KMV \[3\]): the `k` smallest values
//!   under a single hash; `O(n log k)` generation, order-statistics
//!   cardinality estimation.
//! * [`KPartitionMinHash`] — **k-partition** (one-permutation \[17\]): hash
//!   once, partition by the first `p` bits, keep the minimum per partition.
//!   This is the scaffold HyperMinHash compresses, and the "MinHash" of
//!   Figure 6 (fixed-width truncated registers).
//! * [`BBitMinHash`] — **b-bit MinHash** (Li & König \[16\]): keeps only the
//!   lowest `b` bits of each register after sketching. Smaller, but — the
//!   point of §1.4 — it cannot be merged or streamed, so it exposes no
//!   union operation.
//!
//! All mergeable variants support streaming inserts and lossless unions;
//! sketches refuse to combine across mismatched parameters or oracles.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bbit;
pub mod common;
pub mod khash;
pub mod kmv;
pub mod kpartition;

pub use bbit::BBitMinHash;
pub use common::MinHashError;
pub use khash::KHashMinHash;
pub use kmv::BottomK;
pub use kpartition::KPartitionMinHash;
