//! The k-minimum-values (KMV / bottom-k) sketch.
//!
//! §1.1 item 2 and Bar-Yossef et al. \[3\]: one hash function, keep the `k`
//! smallest distinct values. `O(n log k)` generation; the `k`-th order
//! statistic gives an unbiased cardinality estimate, and the overlap of two
//! sketches' bottom-k within the union's bottom-k gives the Jaccard index.
//! Algorithm 3's large-cardinality tail is the same order-statistics idea
//! applied to HyperMinHash's packed registers.

use crate::common::MinHashError;
use hmh_hash::{HashableItem, RandomOracle};

/// A bottom-k sketch: the `k` smallest distinct 64-bit hash values.
///
/// ```
/// use hmh_minhash::BottomK;
/// use hmh_hash::RandomOracle;
///
/// let mut a = BottomK::new(512, RandomOracle::default());
/// let mut b = BottomK::new(512, RandomOracle::default());
/// for i in 0..20_000u64 { a.insert(&i); }
/// for i in 10_000..30_000u64 { b.insert(&i); }
/// let j = a.jaccard(&b).unwrap();
/// assert!((j - 1.0 / 3.0).abs() < 0.07);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BottomK {
    oracle: RandomOracle,
    k: usize,
    /// Sorted ascending, distinct, length ≤ k.
    values: Vec<u64>,
}

impl BottomK {
    /// New sketch keeping the `k` smallest values.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize, oracle: RandomOracle) -> Self {
        assert!(k > 0, "k must be positive");
        Self { oracle, k, values: Vec::with_capacity(k) }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The base oracle.
    pub fn oracle(&self) -> RandomOracle {
        self.oracle
    }

    /// The stored values (sorted ascending).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Sketch memory in bytes.
    pub fn byte_size(&self) -> usize {
        self.k * 8
    }

    /// Insert one item — `O(log k)` comparisons plus an `O(k)` shift when
    /// the value enters the sketch.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, item: &T) {
        self.observe(self.oracle.digest64(item));
    }

    /// Insert a raw hash value (used by the simulator).
    pub fn observe(&mut self, h: u64) {
        let full = self.values.len() == self.k;
        if full && h >= *self.values.last().expect("invariant: len == k ≥ 1") {
            return;
        }
        match self.values.binary_search(&h) {
            Ok(_) => {} // duplicate hash → same element (or full collision)
            Err(pos) => {
                self.values.insert(pos, h);
                if self.values.len() > self.k {
                    self.values.pop();
                }
            }
        }
    }

    /// Cardinality estimate: exact count while under-full, else the
    /// unbiased order-statistics estimator `(k − 1) / U₍ₖ₎` where `U₍ₖ₎` is
    /// the k-th smallest hash as a fraction of the hash space.
    pub fn cardinality(&self) -> f64 {
        if self.values.len() < self.k {
            return self.values.len() as f64;
        }
        let last = *self.values.last().expect("invariant: sketch is full (len == k ≥ 1)");
        let kth = last as f64 + 1.0;
        (self.k as f64 - 1.0) / (kth / 2f64.powi(64))
    }

    /// Lossless union: merge and keep the `k` smallest distinct values.
    pub fn union(&self, other: &Self) -> Result<Self, MinHashError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        for &v in &other.values {
            out.observe(v);
        }
        Ok(out)
    }

    /// Jaccard estimate: with `X` the bottom-k of the union,
    /// `|X ∩ A ∩ B| / |X|` is an unbiased estimate of `|A∩B| / |A∪B|`.
    pub fn jaccard(&self, other: &Self) -> Result<f64, MinHashError> {
        let union = self.union(other)?;
        if union.values.is_empty() {
            return Ok(0.0);
        }
        let in_both = union
            .values
            .iter()
            .filter(|v| {
                self.values.binary_search(v).is_ok() && other.values.binary_search(v).is_ok()
            })
            .count();
        Ok(in_both as f64 / union.values.len() as f64)
    }

    /// Intersection cardinality: `Ĵ · |A∪B|̂`.
    pub fn intersection(&self, other: &Self) -> Result<f64, MinHashError> {
        let j = self.jaccard(other)?;
        let u = self.union(other)?.cardinality();
        Ok(j * u)
    }

    fn check_compatible(&self, other: &Self) -> Result<(), MinHashError> {
        if self.k != other.k {
            return Err(MinHashError::ParameterMismatch { what: "k differs" });
        }
        if self.oracle != other.oracle {
            return Err(MinHashError::OracleMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_range(lo: u64, hi: u64, k: usize) -> BottomK {
        let mut s = BottomK::new(k, RandomOracle::default());
        for i in lo..hi {
            s.insert(&i);
        }
        s
    }

    #[test]
    fn underfull_sketch_is_exact() {
        let s = sketch_range(0, 100, 256);
        assert_eq!(s.cardinality(), 100.0);
        assert_eq!(s.values().len(), 100);
    }

    #[test]
    fn cardinality_estimate_at_scale() {
        let s = sketch_range(0, 100_000, 1024);
        let e = s.cardinality();
        assert!((e / 100_000.0 - 1.0).abs() < 0.1, "estimate {e}");
    }

    #[test]
    fn values_stay_sorted_and_bounded() {
        let s = sketch_range(0, 10_000, 64);
        assert_eq!(s.values().len(), 64);
        assert!(s.values().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut s = BottomK::new(32, RandomOracle::default());
        for _ in 0..10 {
            for i in 0..20u64 {
                s.insert(&i);
            }
        }
        assert_eq!(s.cardinality(), 20.0);
    }

    #[test]
    fn union_matches_direct() {
        let a = sketch_range(0, 3000, 128);
        let b = sketch_range(1500, 4500, 128);
        let direct = sketch_range(0, 4500, 128);
        assert_eq!(a.union(&b).unwrap(), direct);
    }

    #[test]
    fn jaccard_of_half_overlap() {
        let a = sketch_range(0, 20_000, 512);
        let b = sketch_range(10_000, 30_000, 512);
        let j = a.jaccard(&b).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 0.06, "j = {j}");
    }

    #[test]
    fn intersection_estimate() {
        let a = sketch_range(0, 20_000, 512);
        let b = sketch_range(10_000, 30_000, 512);
        let i = a.intersection(&b).unwrap();
        assert!((i / 10_000.0 - 1.0).abs() < 0.2, "intersection {i}");
    }

    #[test]
    fn jaccard_extremes() {
        let a = sketch_range(0, 1000, 128);
        assert_eq!(a.jaccard(&a.clone()).unwrap(), 1.0);
        let b = sketch_range(50_000, 51_000, 128);
        assert_eq!(a.jaccard(&b).unwrap(), 0.0);
        let empty = BottomK::new(128, RandomOracle::default());
        assert_eq!(empty.jaccard(&empty.clone()).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_k_errors() {
        let a = BottomK::new(16, RandomOracle::default());
        let b = BottomK::new(32, RandomOracle::default());
        assert!(a.union(&b).is_err());
    }
}
