//! Shared pieces of the MinHash variants.

/// Errors from combining incompatible sketches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinHashError {
    /// Different `k` / `p` / register-width parameters.
    ParameterMismatch {
        /// Human-readable description of the mismatching parameter.
        what: &'static str,
    },
    /// Different random oracles (seed or algorithm).
    OracleMismatch,
}

impl std::fmt::Display for MinHashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParameterMismatch { what } => {
                write!(f, "MinHash parameter mismatch: {what}")
            }
            Self::OracleMismatch => write!(f, "MinHash sketches use different random oracles"),
        }
    }
}

impl std::error::Error for MinHashError {}

/// Standard error of a `k`-bucket MinHash Jaccard estimate at true index
/// `t`: the matching indicator is Bernoulli(`t`) per bucket, so
/// `σ = sqrt(t(1−t)/k)` — the `k/t`-order variance the paper attributes to
/// "the original MinHash" (§5).
pub fn jaccard_std_err(t: f64, k: usize) -> f64 {
    debug_assert!((0.0..=1.0).contains(&t));
    (t * (1.0 - t) / k as f64).sqrt()
}

/// Jaccard estimate from matching/occupied bucket counts, Algorithm-4
/// style without collision correction: `C / N`.
pub fn jaccard_from_counts(matching: usize, occupied_union: usize) -> f64 {
    if occupied_union == 0 {
        0.0
    } else {
        matching as f64 / occupied_union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_err_shrinks_with_k() {
        assert!(jaccard_std_err(0.5, 1024) < jaccard_std_err(0.5, 256));
        assert_eq!(jaccard_std_err(0.0, 64), 0.0);
        assert_eq!(jaccard_std_err(1.0, 64), 0.0);
        assert!((jaccard_std_err(0.5, 100) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn count_ratio() {
        assert_eq!(jaccard_from_counts(0, 0), 0.0);
        assert_eq!(jaccard_from_counts(5, 10), 0.5);
    }
}
