//! The k-partition (one-permutation) MinHash variant.
//!
//! §1.1 item 3 and Li, Owen & Zhang \[17\]: hash each item once, partition by
//! the first `p` bits, keep the minimum hash value within each of the `2^p`
//! partitions. `O(n)` generation, `O(k)` Jaccard computation.
//!
//! This is both the scaffold HyperMinHash compresses and the "MinHash"
//! baseline of Figure 6, where the minima are stored at a fixed register
//! width (8 or 16 bits): once cardinalities grow, truncated minima collide
//! accidentally and the Jaccard estimate degrades — exactly the failure
//! mode HyperMinHash's adaptive-precision registers avoid.

use crate::common::{jaccard_from_counts, MinHashError};
use hmh_hash::{HashableItem, RandomOracle};
use hmh_hll::registers::BitPacked;

/// A k-partition MinHash sketch with `2^p` fixed-width registers.
///
/// ```
/// use hmh_minhash::KPartitionMinHash;
/// use hmh_hash::RandomOracle;
///
/// // Figure 6's "256 byte MinHash": 256 buckets of 8 bits.
/// let mut s = KPartitionMinHash::new(8, 8, RandomOracle::default());
/// for i in 0..1000u64 { s.insert(&i); }
/// assert_eq!(s.byte_size(), 256);
/// assert!((s.cardinality() / 1000.0 - 1.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KPartitionMinHash {
    p: u32,
    bits: u32,
    oracle: RandomOracle,
    registers: BitPacked,
    /// Occupancy mask (a truncated minimum of 2^bits−1 is a legitimate
    /// value, so "empty" needs out-of-band storage; the paper's byte
    /// accounting, like ours via [`Self::byte_size`], counts registers
    /// only).
    occupied: Vec<bool>,
}

impl KPartitionMinHash {
    /// New sketch with `2^p` registers of `bits` bits each.
    ///
    /// Figure 6's baselines are `(p, bits) = (8, 8)` (256 B) and `(7, 16)`
    /// (also 256 B).
    ///
    /// # Panics
    /// If `p ∉ 1..=24` or `bits ∉ 1..=32`.
    pub fn new(p: u32, bits: u32, oracle: RandomOracle) -> Self {
        assert!((1..=24).contains(&p), "p = {p} out of 1..=24");
        assert!((1..=32).contains(&bits), "bits = {bits} out of 1..=32");
        Self {
            p,
            bits,
            oracle,
            registers: BitPacked::new(bits, 1 << p),
            occupied: vec![false; 1 << p],
        }
    }

    /// Partition-count exponent `p`.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Register width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of partitions `2^p`.
    pub fn num_registers(&self) -> usize {
        // hmh-lint: allow(shift-overflow-hazard) — p ∈ 1..=24 asserted by new
        1 << self.p
    }

    /// The base oracle.
    pub fn oracle(&self) -> RandomOracle {
        self.oracle
    }

    /// Register memory in bytes (the paper's sketch-size accounting).
    pub fn byte_size(&self) -> usize {
        (self.num_registers() * self.bits as usize).div_ceil(8)
    }

    /// Insert one item.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, item: &T) {
        let digest = self.oracle.digest(item);
        let bucket = digest.take_bits(0, self.p) as usize;
        let value = digest.take_bits(self.p, self.bits) as u32;
        self.observe(bucket, value);
    }

    /// Record a truncated minimum directly (used by the simulator).
    pub fn observe(&mut self, bucket: usize, value: u32) {
        if !self.occupied[bucket] || value < self.registers.get(bucket) {
            self.registers.set(bucket, value);
            self.occupied[bucket] = true;
        }
    }

    /// Register value, `None` if the partition is empty.
    pub fn register(&self, bucket: usize) -> Option<u32> {
        self.occupied[bucket].then(|| self.registers.get(bucket))
    }

    /// Jaccard estimate: matching non-empty registers over occupied ones —
    /// no correction for accidental truncation collisions (matching the
    /// Figure 6 protocol, "without estimated collision correction").
    pub fn jaccard(&self, other: &Self) -> Result<f64, MinHashError> {
        self.check_compatible(other)?;
        let mut matching = 0usize;
        let mut occupied = 0usize;
        for i in 0..self.num_registers() {
            match (self.register(i), other.register(i)) {
                (None, None) => {}
                (a, b) => {
                    occupied += 1;
                    if a.is_some() && a == b {
                        matching += 1;
                    }
                }
            }
        }
        Ok(jaccard_from_counts(matching, occupied))
    }

    /// Lossless union (element-wise min with occupancy OR).
    pub fn union(&self, other: &Self) -> Result<Self, MinHashError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        for i in 0..out.num_registers() {
            if let Some(v) = other.register(i) {
                out.observe(i, v);
            }
        }
        Ok(out)
    }

    /// Cardinality estimate.
    ///
    /// With empties present, occupancy linear counting
    /// (`P(empty) = (1 − 2^{-p})^n`); once all partitions are occupied, the
    /// order-statistics estimator `m² / Σ vᵢ` over the register fractions
    /// `vᵢ ∈ [0, 1)` — each register is `min ≈ Exp(n/m)/1`-scale, the same
    /// estimator as Algorithm 3's KMV tail. Truncation floors the registers
    /// at `2^{-bits}` resolution, which caps the reachable range — the
    /// Figure 6 failure mode.
    pub fn cardinality(&self) -> f64 {
        let m = self.num_registers() as f64;
        let empties = self.occupied.iter().filter(|&&o| !o).count();
        if empties > 0 {
            return m * (m / empties as f64).ln();
        }
        let scale = 2f64.powi(self.bits as i32);
        let sum: f64 = (0..self.num_registers())
            .map(|i| (f64::from(self.registers.get(i)) + 0.5) / scale)
            .sum();
        if sum == 0.0 {
            return f64::INFINITY;
        }
        m * m / sum
    }

    fn check_compatible(&self, other: &Self) -> Result<(), MinHashError> {
        if self.p != other.p {
            return Err(MinHashError::ParameterMismatch { what: "p differs" });
        }
        if self.bits != other.bits {
            return Err(MinHashError::ParameterMismatch { what: "register width differs" });
        }
        if self.oracle != other.oracle {
            return Err(MinHashError::OracleMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_range(lo: u64, hi: u64, p: u32, bits: u32) -> KPartitionMinHash {
        let mut s = KPartitionMinHash::new(p, bits, RandomOracle::default());
        for i in lo..hi {
            s.insert(&i);
        }
        s
    }

    #[test]
    fn figure6_sketch_sizes() {
        // "256 byte MinHash sketch with 256 buckets of 8 bits each"
        assert_eq!(KPartitionMinHash::new(8, 8, RandomOracle::default()).byte_size(), 256);
        // "256 byte MinHash sketch with 128 buckets of 16 bits"
        assert_eq!(KPartitionMinHash::new(7, 16, RandomOracle::default()).byte_size(), 256);
    }

    #[test]
    fn jaccard_at_low_cardinality_with_wide_registers() {
        // Wide (24-bit) registers at n = 6000: collisions negligible.
        let a = sketch_range(0, 6000, 8, 24);
        let b = sketch_range(3000, 9000, 8, 24);
        let j = a.jaccard(&b).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 0.1, "j = {j}");
    }

    #[test]
    fn narrow_registers_collide_at_high_cardinality() {
        // The Figure 6 failure mode: 8-bit registers, disjoint sets, large
        // n → spurious matches dominate.
        let a = sketch_range(0, 2_000_000, 8, 8);
        let b = sketch_range(10_000_000, 12_000_000, 8, 8);
        let j = a.jaccard(&b).unwrap();
        assert!(j > 0.5, "truncated registers should collide: j = {j}");

        // Same sets, 32-bit registers: no spurious matches.
        let a = sketch_range(0, 100_000, 8, 32);
        let b = sketch_range(10_000_000, 10_100_000, 8, 32);
        let j = a.jaccard(&b).unwrap();
        assert!(j < 0.02, "wide registers should not collide: j = {j}");
    }

    #[test]
    fn union_matches_direct() {
        let a = sketch_range(0, 2000, 6, 16);
        let b = sketch_range(1000, 3000, 6, 16);
        let direct = sketch_range(0, 3000, 6, 16);
        assert_eq!(a.union(&b).unwrap(), direct);
    }

    #[test]
    fn union_commutative_idempotent() {
        let a = sketch_range(0, 500, 5, 12);
        let b = sketch_range(400, 900, 5, 12);
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn cardinality_linear_counting_and_order_statistics() {
        // Sparse: exactish linear counting.
        let s = sketch_range(0, 50, 8, 16);
        let e = s.cardinality();
        assert!((e - 50.0).abs() < 8.0, "sparse estimate {e}");
        // Dense: order statistics.
        let s = sketch_range(0, 100_000, 8, 24);
        let e = s.cardinality();
        assert!((e / 100_000.0 - 1.0).abs() < 0.15, "dense estimate {e}");
    }

    #[test]
    fn empty_sketch_behaviour() {
        let s = KPartitionMinHash::new(6, 8, RandomOracle::default());
        assert_eq!(s.cardinality(), 0.0);
        assert_eq!(s.jaccard(&s.clone()).unwrap(), 0.0);
        assert_eq!(s.register(0), None);
    }

    #[test]
    fn zero_value_register_is_distinct_from_empty() {
        let mut s = KPartitionMinHash::new(4, 8, RandomOracle::default());
        s.observe(3, 0);
        assert_eq!(s.register(3), Some(0));
        assert_eq!(s.register(2), None);
        // A second observation cannot "lower" below 0.
        s.observe(3, 5);
        assert_eq!(s.register(3), Some(0));
    }

    #[test]
    fn compatibility_checks() {
        let a = KPartitionMinHash::new(6, 8, RandomOracle::default());
        assert!(a.union(&KPartitionMinHash::new(7, 8, RandomOracle::default())).is_err());
        assert!(a.union(&KPartitionMinHash::new(6, 16, RandomOracle::default())).is_err());
        assert!(a.union(&KPartitionMinHash::new(6, 8, RandomOracle::with_seed(1))).is_err());
    }
}
