//! The k-hash-functions MinHash variant.
//!
//! The textbook scheme (§1.1 item 1): `k` independent hash functions, each
//! tracking its own minimum over the whole set. Θ(nk) to build — the
//! shortcoming the other variants address — but the cleanest statistics:
//! every bucket is an independent Bernoulli(t) match.

use crate::common::{jaccard_from_counts, MinHashError};
use hmh_hash::{HashableItem, RandomOracle};

/// A k-hash-functions MinHash sketch storing full 64-bit minima.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KHashMinHash {
    oracle: RandomOracle,
    /// Minimum hash per function; `u64::MAX` = empty.
    minima: Vec<u64>,
}

impl KHashMinHash {
    /// New sketch with `k` hash functions derived from `oracle`.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize, oracle: RandomOracle) -> Self {
        assert!(k > 0, "k must be positive");
        Self { oracle, minima: vec![u64::MAX; k] }
    }

    /// Number of hash functions / buckets.
    pub fn k(&self) -> usize {
        self.minima.len()
    }

    /// The base oracle.
    pub fn oracle(&self) -> RandomOracle {
        self.oracle
    }

    /// Sketch memory in bytes.
    pub fn byte_size(&self) -> usize {
        self.minima.len() * 8
    }

    /// Register view (u64::MAX = empty).
    pub fn registers(&self) -> &[u64] {
        &self.minima
    }

    /// Insert one item — Θ(k) work.
    pub fn insert<T: HashableItem + ?Sized>(&mut self, item: &T) {
        for (i, slot) in self.minima.iter_mut().enumerate() {
            let h = self.oracle.derived(i as u64).digest64(item);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Jaccard estimate: fraction of matching non-empty buckets.
    pub fn jaccard(&self, other: &Self) -> Result<f64, MinHashError> {
        self.check_compatible(other)?;
        let mut matching = 0usize;
        let mut occupied = 0usize;
        for (&a, &b) in self.minima.iter().zip(&other.minima) {
            if a != u64::MAX || b != u64::MAX {
                occupied += 1;
                if a == b {
                    matching += 1;
                }
            }
        }
        Ok(jaccard_from_counts(matching, occupied))
    }

    /// Lossless union (element-wise min).
    pub fn union(&self, other: &Self) -> Result<Self, MinHashError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        for (a, &b) in out.minima.iter_mut().zip(&other.minima) {
            *a = (*a).min(b);
        }
        Ok(out)
    }

    /// Cardinality estimate from order statistics: each occupied register
    /// is the minimum of `n` uniforms with mean `1/(n+1)`, so the MLE over
    /// the `k` (approximately exponential) minima is `n̂ ≈ k / Σ vᵢ`.
    pub fn cardinality(&self) -> f64 {
        let occupied = self.minima.iter().filter(|&&v| v != u64::MAX).count();
        if occupied == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .minima
            .iter()
            .filter(|&&v| v != u64::MAX)
            .map(|&v| (v as f64 + 0.5) / 2f64.powi(64))
            .sum();
        if sum == 0.0 {
            return f64::INFINITY;
        }
        (occupied as f64 / sum - 1.0).max(occupied as f64)
    }

    fn check_compatible(&self, other: &Self) -> Result<(), MinHashError> {
        if self.k() != other.k() {
            return Err(MinHashError::ParameterMismatch { what: "k differs" });
        }
        if self.oracle != other.oracle {
            return Err(MinHashError::OracleMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_range(lo: u64, hi: u64, k: usize) -> KHashMinHash {
        let mut s = KHashMinHash::new(k, RandomOracle::default());
        for i in lo..hi {
            s.insert(&i);
        }
        s
    }

    #[test]
    fn jaccard_of_half_overlap() {
        // |A|=|B|=2000, overlap 1000 → J = 1/3.
        let a = sketch_range(0, 2000, 512);
        let b = sketch_range(1000, 3000, 512);
        let j = a.jaccard(&b).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 0.07, "j = {j}");
    }

    #[test]
    fn identical_sets_match_exactly() {
        let a = sketch_range(0, 500, 64);
        let b = sketch_range(0, 500, 64);
        assert_eq!(a.jaccard(&b).unwrap(), 1.0);
    }

    #[test]
    fn disjoint_sets_rarely_match() {
        let a = sketch_range(0, 5000, 256);
        let b = sketch_range(10_000, 15_000, 256);
        // 64-bit registers: accidental collisions are ~impossible.
        assert_eq!(a.jaccard(&b).unwrap(), 0.0);
    }

    #[test]
    fn union_matches_direct_sketch() {
        let a = sketch_range(0, 1000, 128);
        let b = sketch_range(500, 1500, 128);
        let direct = sketch_range(0, 1500, 128);
        assert_eq!(a.union(&b).unwrap(), direct);
    }

    #[test]
    fn cardinality_order_of_magnitude() {
        let s = sketch_range(0, 10_000, 512);
        let e = s.cardinality();
        assert!((e / 10_000.0 - 1.0).abs() < 0.15, "estimate {e}");
    }

    #[test]
    fn empty_sketch() {
        let s = KHashMinHash::new(16, RandomOracle::default());
        assert_eq!(s.cardinality(), 0.0);
        assert_eq!(s.jaccard(&s.clone()).unwrap(), 0.0);
    }

    #[test]
    fn incompatible_sketches_error() {
        let a = KHashMinHash::new(16, RandomOracle::default());
        let b = KHashMinHash::new(32, RandomOracle::default());
        assert!(a.jaccard(&b).is_err());
        let c = KHashMinHash::new(16, RandomOracle::with_seed(5));
        assert_eq!(a.union(&c).unwrap_err(), MinHashError::OracleMismatch);
    }
}
