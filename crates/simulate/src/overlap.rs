//! Coupled simulation of HyperMinHash sketch pairs with exact overlap
//! structure.

use crate::encode::encode_min;
use hmh_core::{HmhParams, HyperMinHash};
use hmh_math::dist::{min_of_k_uniforms, multinomial_pow2};
use rand::Rng;

/// Sizes of the three disjoint components of an overlapping pair.
///
/// Counts are `f64` so they can exceed 2^53 (see the crate docs on
/// integer-exactness above that scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSpec {
    /// `|A \ B|`.
    pub a_only: f64,
    /// `|B \ A|`.
    pub b_only: f64,
    /// `|A ∩ B|`.
    pub shared: f64,
}

impl SimSpec {
    /// Equal-sized pair with target Jaccard `t`: each set has size `n`,
    /// `shared = 2nt/(1+t)`.
    pub fn equal_sized_with_jaccard(n: f64, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t));
        let shared = 2.0 * n * t / (1.0 + t);
        Self { a_only: n - shared, b_only: n - shared, shared }
    }

    /// Exact Jaccard of the spec.
    pub fn jaccard(self) -> f64 {
        let u = self.a_only + self.b_only + self.shared;
        if u == 0.0 {
            0.0
        } else {
            self.shared / u
        }
    }

    /// `|A|`.
    pub fn n_a(self) -> f64 {
        self.a_only + self.shared
    }

    /// `|B|`.
    pub fn n_b(self) -> f64 {
        self.b_only + self.shared
    }

    /// `|A ∪ B|`.
    pub fn union(self) -> f64 {
        self.a_only + self.b_only + self.shared
    }
}

/// Per-bucket component minima for one simulated set component: bucket
/// occupancies drawn multinomially, then a `Beta(1, k)` minimum per
/// occupied bucket (`None` for empty buckets).
fn component_minima<R: Rng + ?Sized>(
    count: f64,
    p: u32,
    rng: &mut R,
) -> Vec<Option<f64>> {
    multinomial_pow2(count, p, rng)
        .into_iter()
        .map(|k| (k > 0.0).then(|| min_of_k_uniforms(k, rng)))
        .collect()
}

/// Combine two optional minima.
fn min_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Simulate a single sketch of an `n`-element set.
pub fn simulate_hmh_single<R: Rng + ?Sized>(
    params: HmhParams,
    n: f64,
    rng: &mut R,
) -> HyperMinHash {
    let mut sketch = HyperMinHash::new(params);
    for (bucket, v) in component_minima(n, params.p(), rng).into_iter().enumerate() {
        if let Some(v) = v {
            let (c, m) = encode_min(params, v);
            sketch.observe(bucket, c, m);
        }
    }
    sketch
}

/// Simulate a coupled `(A, B)` sketch pair realizing `spec`.
///
/// The three disjoint components get independent per-bucket minima;
/// `A`'s bucket minimum is `min(A\B component, shared component)` and
/// symmetrically for `B` — the exact joint distribution of the real
/// sketches.
pub fn simulate_hmh_pair<R: Rng + ?Sized>(
    params: HmhParams,
    spec: SimSpec,
    rng: &mut R,
) -> (HyperMinHash, HyperMinHash) {
    let p = params.p();
    let a_only = component_minima(spec.a_only, p, rng);
    let b_only = component_minima(spec.b_only, p, rng);
    let shared = component_minima(spec.shared, p, rng);
    let mut a = HyperMinHash::new(params);
    let mut b = HyperMinHash::new(params);
    for bucket in 0..params.num_buckets() {
        if let Some(v) = min_opt(a_only[bucket], shared[bucket]) {
            let (c, m) = encode_min(params, v);
            a.observe(bucket, c, m);
        }
        if let Some(v) = min_opt(b_only[bucket], shared[bucket]) {
            let (c, m) = encode_min(params, v);
            b.observe(bucket, c, m);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmh_core::jaccard::{jaccard, CollisionCorrection};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn spec_arithmetic() {
        let s = SimSpec::equal_sized_with_jaccard(30_000.0, 1.0 / 3.0);
        assert!((s.shared - 15_000.0).abs() < 1.0);
        assert!((s.jaccard() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.union() - 45_000.0).abs() < 1.0);
        assert_eq!(s.n_a(), s.n_b());
    }

    #[test]
    fn simulated_cardinality_is_calibrated_small() {
        let params = HmhParams::new(10, 6, 10).unwrap();
        let mut r = rng(1);
        for &n in &[1e3, 1e5] {
            let sketch = simulate_hmh_single(params, n, &mut r);
            let e = sketch.cardinality();
            assert!((e / n - 1.0).abs() < 0.12, "n={n}: {e}");
        }
    }

    #[test]
    fn simulated_cardinality_is_calibrated_astronomical() {
        // The regime no insertion loop can reach.
        let params = HmhParams::headline();
        let mut r = rng(2);
        for &n in &[1e12, 1e16, 1e19] {
            let sketch = simulate_hmh_single(params, n, &mut r);
            let e = sketch.cardinality();
            assert!((e / n - 1.0).abs() < 0.15, "n={n}: {e}");
        }
    }

    #[test]
    fn simulated_pair_jaccard_matches_spec() {
        let params = HmhParams::new(12, 6, 10).unwrap();
        let mut r = rng(3);
        for &t in &[0.05, 1.0 / 3.0, 0.8] {
            let spec = SimSpec::equal_sized_with_jaccard(1e6, t);
            let (a, b) = simulate_hmh_pair(params, spec, &mut r);
            let est = jaccard(&a, &b, CollisionCorrection::None).unwrap().estimate;
            assert!(
                (est - t).abs() < 0.03 + 0.02 * t,
                "t={t}: estimate {est}"
            );
        }
    }

    #[test]
    fn headline_scale_pair() {
        // n = 10^19, J = 0.01: the abstract's claim, one trial.
        let params = HmhParams::headline();
        let mut r = rng(4);
        let spec = SimSpec::equal_sized_with_jaccard(1e19, 0.01);
        let (a, b) = simulate_hmh_pair(params, spec, &mut r);
        let est = jaccard(&a, &b, CollisionCorrection::Approx).unwrap();
        assert!(
            (est.estimate - 0.01).abs() < 0.004,
            "estimate {} (raw {})",
            est.estimate,
            est.raw
        );
        let card = a.cardinality();
        assert!((card / 1e19 - 1.0).abs() < 0.05, "cardinality {card:e}");
    }

    #[test]
    fn disjoint_pair_shows_only_accidental_collisions() {
        let params = HmhParams::new(10, 6, 6).unwrap();
        let mut r = rng(5);
        let spec = SimSpec { a_only: 1e8, b_only: 1e8, shared: 0.0 };
        let mut total_matches = 0usize;
        let trials = 20;
        for _ in 0..trials {
            let (a, b) = simulate_hmh_pair(params, spec, &mut r);
            total_matches += jaccard(&a, &b, CollisionCorrection::None).unwrap().matching;
        }
        let mean = total_matches as f64 / trials as f64;
        let expect = hmh_core::collisions::expected_collisions(params, 1e8, 1e8);
        assert!(
            (mean - expect).abs() < 4.0 * (expect / trials as f64).sqrt() + 1.0,
            "mean matches {mean} vs expected collisions {expect}"
        );
    }

    #[test]
    fn union_of_simulated_pair_estimates_union_size() {
        let params = HmhParams::new(12, 6, 10).unwrap();
        let mut r = rng(6);
        let spec = SimSpec { a_only: 4e10, b_only: 3e10, shared: 1e10 };
        let (a, b) = simulate_hmh_pair(params, spec, &mut r);
        let u = a.union(&b).unwrap().cardinality();
        assert!((u / 8e10 - 1.0).abs() < 0.05, "union {u:e}");
    }

    #[test]
    fn simulation_matches_insertion_distributionally() {
        // The fidelity gate: at n = 50k, counter histograms from simulated
        // and inserted sketches must agree within sampling noise.
        let params = HmhParams::new(8, 6, 10).unwrap();
        let n = 50_000u64;
        let trials = 30u64;
        let cap = params.cap() as usize;
        let mut sim_hist = vec![0f64; cap + 1];
        let mut ins_hist = vec![0f64; cap + 1];
        let mut r = rng(7);
        for t in 0..trials {
            let sim = simulate_hmh_single(params, n as f64, &mut r);
            for (k, &c) in sim.counter_histogram().iter().enumerate() {
                sim_hist[k] += c as f64;
            }
            let oracle = hmh_hash::RandomOracle::with_seed(t);
            let mut ins = HyperMinHash::with_oracle(params, oracle);
            for i in 0..n {
                ins.insert(&i);
            }
            for (k, &c) in ins.counter_histogram().iter().enumerate() {
                ins_hist[k] += c as f64;
            }
        }
        // Compare where there is mass; tolerance ~5σ of Poisson counts.
        for k in 0..=cap {
            let (s, i) = (sim_hist[k], ins_hist[k]);
            if s + i > 50.0 {
                let sigma = ((s + i) / 2.0).sqrt();
                assert!(
                    (s - i).abs() < 6.0 * sigma,
                    "counter {k}: simulated {s} vs inserted {i}"
                );
            }
        }
    }
}
