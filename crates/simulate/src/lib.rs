//! Order-statistics sketch simulation: draw sketch registers directly from
//! their distribution, for cardinalities far beyond what item-by-item
//! insertion can reach.
//!
//! The paper's headline claim lives at `n ≈ 10^19` ("estimating Jaccard
//! indices of 0.01 for set cardinalities on the order of 10^19 … using
//! 64KiB of memory") — exabytes of inserts if done literally. But a
//! sketch's registers are a *function of order statistics only*, and those
//! have closed-form distributions:
//!
//! 1. **Occupancy.** The per-bucket element counts of an `n`-element set
//!    over `2^p` equal buckets are multinomial — sampled by recursive
//!    binomial halving ([`hmh_math::dist::multinomial_pow2`]).
//! 2. **Minima.** The minimum of `k` uniforms is `Beta(1, k)`, sampled in
//!    log space with full relative precision ([`hmh_math::dist::min_of_k_uniforms`]).
//! 3. **Overlap coupling.** For sets `A`, `B` with `|A∩B| = s`, decompose
//!    into the disjoint components `A\B`, `B\A`, `A∩B` — exactly the
//!    decomposition the paper's own proofs use — simulate each component's
//!    per-bucket minima independently, and take `min(component minima)`
//!    per set.
//! 4. **Encoding.** The sampled minimum is encoded to a register by exact
//!    bit extraction from the `f64` representation ([`encode`]), matching
//!    `Digest128::rho_sigma` bit for bit within `f64`'s 52-bit significand
//!    (ample: registers consume `≤ cap − 1 + r ≤ 78` *positions* but only
//!    `r ≤ 16` significant bits below the leading one).
//!
//! Fidelity is validated two ways in the tests: simulated register
//! histograms match theory (`hmh_hll::estimators::exact_register_pmf`),
//! and simulated sketches are statistically indistinguishable from
//! inserted sketches at overlapping scales.
//!
//! Counts are carried as `f64`; above 2^53 they lose integer exactness,
//! which perturbs cardinalities by ≤ 1 part in 2^52 — unobservable at
//! register resolution.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod encode;
pub mod hll_sim;
pub mod minhash_sim;
pub mod overlap;

pub use encode::encode_min;
pub use overlap::{simulate_hmh_pair, simulate_hmh_single, SimSpec};
