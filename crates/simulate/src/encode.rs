//! Exact register encoding of a sampled minimum.
//!
//! Given a bucket minimum `v ∈ (0, 1)`, produce the `(counter, mantissa)`
//! register that `Digest128::rho_sigma` would produce for a hash whose
//! within-bucket fraction is `v`. The leading-one position is read from
//! the `f64` exponent field (exact — no `log2` rounding hazards) and the
//! mantissa bits from the top of the `f64` fraction field.

use hmh_core::HmhParams;

/// Encode a within-bucket minimum `v ∈ (0, 1)` into `(counter, mantissa)`.
///
/// * `counter = min(⌊−log₂ v⌋ + 1, cap)` — the leading-one position,
///   saturated.
/// * uncapped: `mantissa` = the `r` bits after the leading one.
/// * capped: `mantissa` = bits at the fixed positions `cap … cap+r−1`
///   (Lemma 4's `i = 2^q` row).
///
/// # Panics
/// If `v` is not in `(0, 1)`.
pub fn encode_min(params: HmhParams, v: f64) -> (u32, u32) {
    assert!(v > 0.0 && v < 1.0, "minimum {v} out of (0, 1)");
    let cap = params.cap();
    let r = params.r();
    let bits = v.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i64;
    // Leading-one position: v ∈ [2^e, 2^{e+1}) ⇒ position = −e =
    // 1023 − exp_field. Subnormals (exp_field == 0) are astronomically
    // below any cap we allow and saturate.
    let rho = if exp_field == 0 { u32::MAX } else { (1023 - exp_field).max(1) as u32 };
    debug_assert!(r <= 24, "HmhParams::new caps r at 24, so 52 - r cannot underflow");
    if rho < cap {
        // Top r bits of the 52-bit fraction are the bits after the
        // leading one.
        let frac = bits & ((1u64 << 52) - 1);
        let mantissa = (frac >> (52 - r)) as u32;
        (rho, mantissa)
    } else {
        // Fixed-position window: mantissa = ⌊v · 2^{cap−1+r}⌋ mod 2^r.
        // The scaling is exact (power of two); the floor of a value below
        // 2^r fits comfortably.
        let scaled = v * 2f64.powi((cap - 1 + r) as i32);
        let mantissa = if scaled >= params.mantissa_values() as f64 {
            // v ∈ [2^{-(cap-1)}·(1-ε), 2^{-(cap-1)}) rounding artifact —
            // cannot occur for v strictly below the cap boundary, but a
            // min that equals the boundary (rho == cap-1... handled above)
            // leaves this defensive clamp.
            params.mantissa_values() as u32 - 1
        } else {
            scaled.floor() as u32
        };
        (cap, mantissa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmh_hash::Digest128;

    fn params(q: u32, r: u32) -> HmhParams {
        HmhParams::new(0, q, r).unwrap()
    }

    /// Build a digest whose window fraction equals `v` exactly (v must be
    /// a dyadic with ≤ 100 bits) and compare rho_sigma to encode_min.
    fn check_against_rho_sigma(v: f64, q: u32, r: u32) {
        let p = params(q, r);
        let as_bits = (v * 2f64.powi(100)) as u128; // dyadic, exact
        let digest = Digest128::from_u128(as_bits << 28);
        let expect = digest.rho_sigma(0, p.cap(), p.r());
        let got = encode_min(p, v);
        assert_eq!(got, (expect.0, expect.1 as u32), "v = {v:e}, q={q}, r={r}");
    }

    #[test]
    fn agrees_with_rho_sigma_across_scales() {
        for &(q, r) in &[(4u32, 4u32), (6, 10), (3, 8)] {
            for exp in 1..40 {
                // v = 2^-exp · (1 + j/16) for a few j: exercises every
                // counter class including the cap.
                for j in [0u32, 3, 9, 15] {
                    let v = 2f64.powi(-exp) * (1.0 + f64::from(j) / 16.0);
                    if v < 1.0 {
                        check_against_rho_sigma(v, q, r);
                    }
                }
            }
        }
    }

    #[test]
    fn capped_region_fixed_window() {
        // q=3 → cap=7: v below 2^-6 saturates; mantissa = bits at
        // positions 7..7+r−1.
        let p = params(3, 4);
        // v = 2^-8 = 0.00000001₂ → positions: leading one at 8 ≥ cap.
        // Window bits 7..10 of v: v·2^(6+4) = 2^2 = 4 → mantissa 4.
        let (c, m) = encode_min(p, 2f64.powi(-8));
        assert_eq!(c, 7);
        assert_eq!(m, 4);
        check_against_rho_sigma(2f64.powi(-8), 3, 4);
    }

    #[test]
    fn boundary_between_capped_and_uncapped() {
        let p = params(3, 4); // cap = 7
        // Leading one at exactly cap−1 = 6 → uncapped.
        let (c, _) = encode_min(p, 2f64.powi(-6));
        assert_eq!(c, 6);
        // Leading one at cap = 7 → capped, and the window sees that bit.
        let (c, m) = encode_min(p, 2f64.powi(-7));
        assert_eq!(c, 7);
        assert_eq!(m, 0b1000);
    }

    #[test]
    fn astronomically_small_minima_saturate() {
        let p = params(6, 10); // cap = 63
        let (c, m) = encode_min(p, 1e-300);
        assert_eq!(c, 63);
        assert_eq!(m, 0, "bits far below the window are zero");
        // Headline scale: v ~ 2^-48 (n = 10^19, p = 15).
        let v = 3.2e-15;
        let (c, _) = encode_min(p, v);
        assert_eq!(c, 49, "2^-49 ≤ 3.2e-15 < 2^-48");
    }

    #[test]
    fn register_distribution_matches_lemma4_masses() {
        // Encode many sampled minima of k uniforms; the empirical
        // (counter, mantissa) frequencies must match the exact interval
        // masses P((i,j)) = (1−s₁)^k − (1−s₂)^k of Lemma 4. (Note the
        // mantissa is *not* uniform — the min's density decays within each
        // octave — so this is the correct reference, not a flat law.)
        use hmh_math::logspace::pow1m_diff;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = HmhParams::new(0, 6, 3).unwrap();
        let k = 1e6;
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = std::collections::HashMap::new();
        let trials = 40_000;
        for _ in 0..trials {
            let v = hmh_math::dist::min_of_k_uniforms(k, &mut rng);
            *counts.entry(encode_min(p, v)).or_insert(0u32) += 1;
        }
        let mass = |i: u32, j: u32| -> f64 {
            let r = p.r() as i32;
            let (s1, s2) = if i < p.cap() {
                let base = p.mantissa_values() as f64;
                let den = 2f64.powi(r + i as i32);
                ((base + f64::from(j)) / den, (base + f64::from(j) + 1.0) / den)
            } else {
                let den = 2f64.powi(r + p.cap() as i32 - 1);
                (f64::from(j) / den, (f64::from(j) + 1.0) / den)
            };
            pow1m_diff(s1, s2, k)
        };
        let mut checked = 0;
        for i in 1..=p.cap() {
            for j in 0..p.mantissa_values() as u32 {
                let expect = mass(i, j) * trials as f64;
                if expect > 100.0 {
                    let got = f64::from(counts.get(&(i, j)).copied().unwrap_or(0));
                    assert!(
                        (got - expect).abs() < 5.0 * expect.sqrt() + 3.0,
                        "register ({i},{j}): {got} vs {expect}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 10, "test must exercise several registers: {checked}");
    }

    #[test]
    #[should_panic(expected = "out of (0, 1)")]
    fn rejects_out_of_range() {
        encode_min(HmhParams::figure6(), 1.0);
    }
}
