//! Coupled simulation of k-partition MinHash pairs (the Figure 6
//! baselines) at arbitrary cardinality.
//!
//! The register of bucket `i` is `⌊min · 2^bits⌋` — truncation commutes
//! with the minimum, so encoding the sampled `Beta(1, k)` minimum directly
//! gives exactly the distribution of the inserted sketch.

use crate::overlap::SimSpec;
use hmh_math::dist::{min_of_k_uniforms, multinomial_pow2};
use hmh_minhash::KPartitionMinHash;
use hmh_hash::RandomOracle;
use rand::Rng;

fn truncate(v: f64, bits: u32) -> u32 {
    let scaled = (v * 2f64.powi(bits as i32)).floor();
    (scaled as u32).min((1u32 << bits) - 1)
}

fn component_minima<R: Rng + ?Sized>(count: f64, p: u32, rng: &mut R) -> Vec<Option<f64>> {
    multinomial_pow2(count, p, rng)
        .into_iter()
        .map(|k| (k > 0.0).then(|| min_of_k_uniforms(k, rng)))
        .collect()
}

/// Simulate a single k-partition MinHash sketch of an `n`-element set.
pub fn simulate_kpartition_single<R: Rng + ?Sized>(
    p: u32,
    bits: u32,
    n: f64,
    rng: &mut R,
) -> KPartitionMinHash {
    let mut sketch = KPartitionMinHash::new(p, bits, RandomOracle::default());
    for (bucket, v) in component_minima(n, p, rng).into_iter().enumerate() {
        if let Some(v) = v {
            sketch.observe(bucket, truncate(v, bits));
        }
    }
    sketch
}

/// Simulate a coupled k-partition MinHash pair realizing `spec` (same
/// component decomposition as the HyperMinHash simulator).
pub fn simulate_kpartition_pair<R: Rng + ?Sized>(
    p: u32,
    bits: u32,
    spec: SimSpec,
    rng: &mut R,
) -> (KPartitionMinHash, KPartitionMinHash) {
    let a_only = component_minima(spec.a_only, p, rng);
    let b_only = component_minima(spec.b_only, p, rng);
    let shared = component_minima(spec.shared, p, rng);
    let mut a = KPartitionMinHash::new(p, bits, RandomOracle::default());
    let mut b = KPartitionMinHash::new(p, bits, RandomOracle::default());
    for bucket in 0..(1usize << p) {
        let sh = shared[bucket];
        for (own, sketch) in [(a_only[bucket], &mut a), (b_only[bucket], &mut b)] {
            let v = match (own, sh) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            };
            if let Some(v) = v {
                sketch.observe(bucket, truncate(v, bits));
            }
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truncation_basics() {
        assert_eq!(truncate(0.5, 8), 128);
        assert_eq!(truncate(0.999999999, 8), 255);
        assert_eq!(truncate(1e-20, 8), 0);
    }

    #[test]
    fn simulated_jaccard_matches_at_low_cardinality() {
        // Wide registers, moderate n: estimate ≈ truth.
        let mut rng = StdRng::seed_from_u64(1);
        let spec = SimSpec::equal_sized_with_jaccard(10_000.0, 1.0 / 3.0);
        let (a, b) = simulate_kpartition_pair(9, 24, spec, &mut rng);
        let j = a.jaccard(&b).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 0.08, "j = {j}");
    }

    #[test]
    fn narrow_registers_fail_at_high_cardinality() {
        // The Figure 6 failure mode, reproduced by simulation: 8-bit
        // registers at n = 2^20 collide massively, inflating J.
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SimSpec::equal_sized_with_jaccard(2f64.powi(20), 1.0 / 3.0);
        let (a, b) = simulate_kpartition_pair(8, 8, spec, &mut rng);
        let j = a.jaccard(&b).unwrap();
        assert!(j > 0.6, "truncation collisions should inflate J: {j}");
    }

    #[test]
    fn simulation_matches_insertion_distributionally() {
        // Compare simulated vs inserted register histograms at n = 20k.
        let (p, bits) = (6u32, 8u32);
        let n = 20_000u64;
        let trials = 40;
        let mut sim_hist = vec![0f64; 1 << bits];
        let mut ins_hist = vec![0f64; 1 << bits];
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..trials {
            let sim = simulate_kpartition_single(p, bits, n as f64, &mut rng);
            let mut ins = KPartitionMinHash::new(p, bits, RandomOracle::with_seed(t));
            for i in 0..n {
                ins.insert(&i);
            }
            for bucket in 0..(1usize << p) {
                if let Some(v) = sim.register(bucket) {
                    sim_hist[v as usize] += 1.0;
                }
                if let Some(v) = ins.register(bucket) {
                    ins_hist[v as usize] += 1.0;
                }
            }
        }
        // Coarse-grain into 16 bins to keep counts high, then compare.
        for bin in 0..16 {
            let (mut s, mut i) = (0.0, 0.0);
            for v in bin * 16..(bin + 1) * 16 {
                s += sim_hist[v];
                i += ins_hist[v];
            }
            if s + i > 40.0 {
                let sigma = ((s + i) / 2.0).sqrt();
                assert!(
                    (s - i).abs() < 6.0 * sigma,
                    "bin {bin}: simulated {s} vs inserted {i}"
                );
            }
        }
    }

    #[test]
    fn astronomical_cardinality_saturates_registers() {
        // At n = 10^15 every 8-bit register is 0 — the MinHash failure the
        // paper contrasts against.
        let mut rng = StdRng::seed_from_u64(4);
        let s = simulate_kpartition_single(8, 8, 1e15, &mut rng);
        for bucket in 0..256 {
            assert_eq!(s.register(bucket), Some(0));
        }
    }
}
