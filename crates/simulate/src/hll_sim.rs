//! HyperLogLog sketch simulation at arbitrary cardinality.
//!
//! Used by the §1.3 comparison experiment (inclusion–exclusion vs
//! joint-MLE vs HyperMinHash) when the union sizes exceed insertion range.

use crate::overlap::SimSpec;
use hmh_hll::HyperLogLog;
use hmh_hash::RandomOracle;
use hmh_math::dist::{min_of_k_uniforms, multinomial_pow2};
use rand::Rng;

/// Leading-one position of `v ∈ (0, 1)`, saturated at `cap`.
fn rho_of(v: f64, cap: u32) -> u32 {
    let bits = v.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i64;
    if exp_field == 0 {
        return cap;
    }
    ((1023 - exp_field).max(1) as u32).min(cap)
}

fn component_minima<R: Rng + ?Sized>(count: f64, p: u32, rng: &mut R) -> Vec<Option<f64>> {
    multinomial_pow2(count, p, rng)
        .into_iter()
        .map(|k| (k > 0.0).then(|| min_of_k_uniforms(k, rng)))
        .collect()
}

/// Simulate a single HLL sketch of an `n`-element set.
pub fn simulate_hll_single<R: Rng + ?Sized>(
    p: u32,
    cap: u32,
    n: f64,
    rng: &mut R,
) -> HyperLogLog {
    let mut sketch = HyperLogLog::with_oracle(p, cap, RandomOracle::default());
    for (bucket, v) in component_minima(n, p, rng).into_iter().enumerate() {
        if let Some(v) = v {
            sketch.observe_register(bucket, rho_of(v, cap));
        }
    }
    sketch
}

/// Simulate a coupled HLL pair realizing `spec`.
pub fn simulate_hll_pair<R: Rng + ?Sized>(
    p: u32,
    cap: u32,
    spec: SimSpec,
    rng: &mut R,
) -> (HyperLogLog, HyperLogLog) {
    let a_only = component_minima(spec.a_only, p, rng);
    let b_only = component_minima(spec.b_only, p, rng);
    let shared = component_minima(spec.shared, p, rng);
    let mut a = HyperLogLog::with_oracle(p, cap, RandomOracle::default());
    let mut b = HyperLogLog::with_oracle(p, cap, RandomOracle::default());
    for bucket in 0..(1usize << p) {
        let sh = shared[bucket];
        for (own, sketch) in [(a_only[bucket], &mut a), (b_only[bucket], &mut b)] {
            let v = match (own, sh) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            };
            if let Some(v) = v {
                sketch.observe_register(bucket, rho_of(v, cap));
            }
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rho_of_matches_register_semantics() {
        assert_eq!(rho_of(0.5, 63), 1);
        assert_eq!(rho_of(0.25, 63), 2);
        assert_eq!(rho_of(0.3, 63), 2);
        assert_eq!(rho_of(2f64.powi(-70), 63), 63, "saturates");
        assert_eq!(rho_of(1e-300, 8), 8);
    }

    #[test]
    fn simulated_hll_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        for &n in &[1e4, 1e7, 1e12] {
            let s = simulate_hll_single(12, 63, n, &mut rng);
            let e = s.cardinality();
            assert!((e / n - 1.0).abs() < 0.06, "n={n}: {e}");
        }
    }

    #[test]
    fn pair_union_and_intersection_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SimSpec { a_only: 3e6, b_only: 3e6, shared: 3e6 };
        let (a, b) = simulate_hll_pair(12, 63, spec, &mut rng);
        let est =
            hmh_hll::inclusion_exclusion(&a, &b, hmh_hll::estimators::EstimatorKind::ErtlImproved)
                .unwrap();
        assert!((est.union / 9e6 - 1.0).abs() < 0.05, "{est:?}");
        assert!((est.intersection / 3e6 - 1.0).abs() < 0.25, "{est:?}");
    }

    #[test]
    fn simulation_matches_insertion_distributionally() {
        let (p, cap) = (8u32, 63u32);
        let n = 30_000u64;
        let trials = 30;
        let mut sim_hist = vec![0f64; cap as usize + 1];
        let mut ins_hist = vec![0f64; cap as usize + 1];
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..trials {
            let sim = simulate_hll_single(p, cap, n as f64, &mut rng);
            for (k, &c) in sim.histogram().iter().enumerate() {
                sim_hist[k] += c as f64;
            }
            let mut ins = HyperLogLog::with_oracle(p, cap, RandomOracle::with_seed(t));
            for i in 0..n {
                ins.insert(&i);
            }
            for (k, &c) in ins.histogram().iter().enumerate() {
                ins_hist[k] += c as f64;
            }
        }
        for k in 0..=cap as usize {
            let (s, i) = (sim_hist[k], ins_hist[k]);
            if s + i > 50.0 {
                let sigma = ((s + i) / 2.0).sqrt();
                assert!((s - i).abs() < 6.0 * sigma, "register {k}: {s} vs {i}");
            }
        }
    }
}
