//! Compensated summation (Neumaier's variant of Kahan's algorithm).
//!
//! The collision formulas sum up to `2^q·2^r` terms spanning ~90 orders of
//! magnitude; plain accumulation loses the small terms entirely. Neumaier
//! summation keeps the error at one ulp of the true sum regardless of term
//! ordering or magnitude spread.

/// A running compensated sum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Empty sum.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        // Neumaier: compensate whichever operand lost low-order bits.
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// Compensated sum of a slice.
#[inline]
pub fn kahan_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_kahan_failure_case() {
        // 1 + 1e100 + 1 - 1e100 = 2; naive f64 gives 0; Neumaier gives 2.
        let mut s = KahanSum::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            s.add(v);
        }
        assert_eq!(s.total(), 2.0);
    }

    #[test]
    fn many_small_terms() {
        let mut s = KahanSum::new();
        let n = 10_000_000;
        for _ in 0..n {
            s.add(0.1);
        }
        let err = (s.total() - n as f64 * 0.1).abs();
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: KahanSum = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.total(), 6.0);
        let mut s2 = s;
        s2.extend([4.0]);
        assert_eq!(s2.total(), 10.0);
        assert_eq!(kahan_sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().total(), 0.0);
    }
}
