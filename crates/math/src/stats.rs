//! Summary statistics for the experiment harness.
//!
//! Figure 6 plots *mean relative error* of Jaccard estimates over many
//! trials; the collision experiments need running means/variances to check
//! Theorems 1 and 2. Everything here is numerically careful (Welford
//! update, compensated percentile input) but deliberately simple.

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge two accumulators (parallel Welford).
    pub fn merge(&self, other: &Self) -> Self {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        Self { n, mean, m2 }
    }
}

/// Relative error `|est − truth| / truth`; infinite when truth is 0 and the
/// estimate is not.
#[inline]
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Error summary over a batch of (estimate, truth) pairs: the quantities
/// the paper's figure reports plus a few more.
#[derive(Debug, Clone, Default)]
pub struct ErrorSummary {
    samples: Vec<f64>,
    signed: Welford,
}

impl ErrorSummary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one estimate against its ground truth.
    pub fn add(&mut self, estimate: f64, truth: f64) {
        self.samples.push(relative_error(estimate, truth));
        if truth != 0.0 {
            self.signed.add((estimate - truth) / truth);
        }
    }

    /// Number of recorded pairs.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean relative error — the y-axis of Figure 6.
    pub fn mean_relative_error(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let s: crate::KahanSum = self.samples.iter().copied().collect();
        s.total() / self.samples.len() as f64
    }

    /// Root-mean-square relative error.
    pub fn rmse(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let s: crate::KahanSum = self.samples.iter().map(|e| e * e).collect();
        (s.total() / self.samples.len() as f64).sqrt()
    }

    /// Mean signed relative error (bias).
    pub fn bias(&self) -> f64 {
        self.signed.mean()
    }

    /// The `q`-th quantile of relative error, `q ∈ [0, 1]`, by
    /// nearest-rank on the sorted samples.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b).expect("invariant: recorded errors are finite, never NaN")
        });
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    }

    /// Maximum relative error.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for &x in &a_data {
            a.add(x);
            all.add(x);
        }
        for &x in &b_data {
            b.add(x);
            all.add(x);
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.variance() - all.variance()).abs() < 1e-12);
        // Merging with empty is identity.
        assert!((Welford::new().merge(&all).mean() - all.mean()).abs() < 1e-15);
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(11.0, 10.0), 0.1);
        assert_eq!(relative_error(9.0, 10.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert_eq!(relative_error(-5.0, -10.0), 0.5);
    }

    #[test]
    fn error_summary() {
        let mut s = ErrorSummary::new();
        s.add(11.0, 10.0); // +10%
        s.add(9.0, 10.0); // -10%
        assert_eq!(s.count(), 2);
        assert!((s.mean_relative_error() - 0.1).abs() < 1e-15);
        assert!((s.rmse() - 0.1).abs() < 1e-15);
        assert!(s.bias().abs() < 1e-15, "symmetric errors → no bias");
        assert_eq!(s.max(), 0.1);
        assert_eq!(s.quantile(0.0), 0.1);
        assert_eq!(s.quantile(1.0), 0.1);
    }

    #[test]
    fn quantiles_on_spread_data() {
        let mut s = ErrorSummary::new();
        for i in 1..=100 {
            s.add(100.0 + i as f64, 100.0); // errors 0.01 .. 1.00
        }
        assert!((s.quantile(0.5) - 0.5).abs() < 0.02);
        assert!((s.quantile(0.9) - 0.9).abs() < 0.02);
        assert_eq!(s.max(), 1.0);
    }
}
