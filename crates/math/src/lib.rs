//! Numerics substrate for the HyperMinHash reproduction.
//!
//! The paper's exact expected-collision formula (Lemma 4 / Algorithm 5)
//! "is slow and often results in floating point errors unless BigInts are
//! used". This crate provides both remedies plus everything else the
//! workspace needs:
//!
//! * [`logspace`] — cancellation-free kernels for `(1-b)^n` and differences
//!   thereof, valid for `n` up to 10^19 and `b` down to 2^-120. These make
//!   Algorithm 5 exact in plain `f64`.
//! * [`bigint`] / [`bigfloat`] — arbitrary-precision integers and binary
//!   floats, used to evaluate Algorithm 5 verbatim as the paper prescribes
//!   and to cross-check the log-space kernels.
//! * [`kahan`] — compensated (Neumaier) summation for the long alternating
//!   sums in the collision formulas and estimators.
//! * [`stats`] — streaming moments, quantiles and error summaries used by
//!   the experiment harness.
//! * [`dist`] — samplers (exponential, minima of `k` uniforms, binomial /
//!   multinomial for `n` up to 10^19, Poisson, Zipf) that power the
//!   order-statistics sketch simulator.
//! * [`optimize`] — derivative-free 1-D Brent and N-D Nelder–Mead used by
//!   the HLL maximum-likelihood estimators.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigfloat;
pub mod bigint;
pub mod dist;
pub mod kahan;
pub mod logspace;
pub mod optimize;
pub mod stats;

pub use bigfloat::BigFloat;
pub use bigint::BigUint;
pub use kahan::KahanSum;
pub use stats::{ErrorSummary, Welford};
