//! Distribution samplers for the order-statistics sketch simulator.
//!
//! The headline experiments run at cardinalities up to 10^19 — far beyond
//! anything that can be inserted item by item. The simulator instead draws
//! sketch registers directly from their distribution, which needs exactly
//! three primitives, all valid for `n` up to 2^63 and beyond (counts are
//! carried as `f64`, whose 2^53 integer resolution is astronomically finer
//! than any register-level event at those scales):
//!
//! * [`min_of_k_uniforms`] — the minimum of `k` iid uniforms, i.e. a
//!   `Beta(1, k)` draw, computed in log space with full relative precision
//!   even when the result is ~2^-60.
//! * [`binomial`] — hybrid exact-inversion / normal sampler with no `O(n)`
//!   paths.
//! * [`multinomial_pow2`] — bucket occupancies for `2^levels` equal
//!   partitions by recursive binomial halving.
//!
//! Plus general-purpose extras used by workload generators: [`normal`],
//! [`poisson`], [`exp_unit`] and [`ZipfSampler`].

use rand::Rng;

/// A standard exponential draw: `−ln(1−U)`.
#[inline]
pub fn exp_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    -(-u).ln_1p()
}

/// A standard normal draw (Box–Muller; one value per call, the second is
/// discarded for simplicity — these are not hot paths).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > 0.0 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// The minimum of `k` iid `U[0,1)` variables (`Beta(1, k)`), exact in
/// distribution and with full *relative* precision for tiny results.
///
/// Derivation: `P(min ≤ x) = 1 − (1−x)^k`, so `min = 1 − (1−U)^{1/k}`
/// `= −expm1(ln(1−U)/k)`. For `k = 10^19` the result is ~1e-19 and still
/// carries ~15 significant digits, which is what lets the simulator encode
/// LogLog counters and mantissa bits faithfully.
///
/// `k = 0` returns 1.0 (the empty minimum: no element, register stays
/// empty — callers treat occupancy separately, but 1.0 is a safe sentinel
/// since real minima are < 1).
#[inline]
pub fn min_of_k_uniforms<R: Rng + ?Sized>(k: f64, rng: &mut R) -> f64 {
    debug_assert!(k >= 0.0);
    if k == 0.0 {
        return 1.0;
    }
    let u: f64 = rng.gen();
    -((-u).ln_1p() / k).exp_m1()
}

/// A Poisson draw. Exact (inversion) for small means, normal approximation
/// for large ones.
pub fn poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0.0;
    }
    if mean < 30.0 {
        // Inversion by pmf recurrence.
        let mut pmf = (-mean).exp();
        let mut cdf = pmf;
        let mut k = 0.0f64;
        let u: f64 = rng.gen();
        let cap = mean + 20.0 * mean.sqrt() + 50.0;
        while u > cdf && k < cap {
            k += 1.0;
            pmf *= mean / k;
            cdf += pmf;
        }
        k
    } else {
        (mean + mean.sqrt() * normal(rng)).round().max(0.0)
    }
}

/// A `Binomial(n, p)` draw with `n` carried as `f64` (valid far beyond
/// 2^53: at that scale the distribution is a narrow normal whose absolute
/// resolution is irrelevant next to its ~10^9 standard deviation).
///
/// Strategy: flip to the smaller of `p`/`1−p`; if the variance is at least
/// [`BINOMIAL_NORMAL_VAR`], use the normal approximation (Berry–Esseen
/// error < 1% of a standard deviation there); otherwise the mean is < 50
/// and exact CDF inversion by pmf recurrence runs in O(mean) steps. No
/// `O(n)` path exists.
pub fn binomial<R: Rng + ?Sized>(n: f64, p: f64, rng: &mut R) -> f64 {
    debug_assert!(n >= 0.0, "negative n");
    debug_assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    if n == 0.0 || p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial(n, 1.0 - p, rng);
    }
    let mean = n * p;
    let var = mean * (1.0 - p);
    if var >= BINOMIAL_NORMAL_VAR {
        return (mean + var.sqrt() * normal(rng)).round().clamp(0.0, n);
    }
    // var < threshold and p ≤ 1/2 → mean ≤ 2·var < 2·threshold: inversion
    // terminates quickly. pmf(0) = (1-p)^n via log space (n may be 1e19).
    let mut pmf = crate::logspace::pow1m(p, n);
    if pmf == 0.0 {
        // Pathological corner (huge n with mid-size p but tiny var cannot
        // actually happen; defensive fallback).
        return (mean + var.sqrt() * normal(rng)).round().clamp(0.0, n);
    }
    let odds = p / (1.0 - p);
    let mut cdf = pmf;
    let mut k = 0.0f64;
    let u: f64 = rng.gen();
    let cap = mean + 20.0 * var.sqrt() + 50.0;
    while u > cdf && k < cap {
        pmf *= (n - k) / (k + 1.0) * odds;
        k += 1.0;
        cdf += pmf;
    }
    k.min(n)
}

/// Variance threshold above which [`binomial`] switches to the normal
/// approximation.
pub const BINOMIAL_NORMAL_VAR: f64 = 25.0;

/// Occupancies of `2^levels` equally-likely buckets for `n` balls, by
/// recursive `Binomial(·, 1/2)` halving. Returns exactly `2^levels` counts
/// summing to `n`.
pub fn multinomial_pow2<R: Rng + ?Sized>(n: f64, levels: u32, rng: &mut R) -> Vec<f64> {
    assert!(levels < 32, "2^levels counts must be allocatable (levels = {levels})");
    let mut counts = vec![0.0f64; 1 << levels];
    counts[0] = n;
    let mut width = 1usize;
    for _ in 0..levels {
        // Split each occupied block in half, back to front so we can write
        // in place.
        for i in (0..width).rev() {
            let total = counts[i];
            let left = binomial(total, 0.5, rng);
            counts[2 * i] = left;
            counts[2 * i + 1] = total - left;
        }
        width *= 2;
    }
    counts
}

/// Bounded Zipf sampler over `{1, …, n}` with exponent `s`, by inverse-CDF
/// binary search on a precomputed table.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the table for `n` items with exponent `s` (`s = 1.0` is the
    /// classic Zipf law).
    ///
    /// # Panics
    /// If `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        assert!(s >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = crate::KahanSum::new();
        for k in 1..=n {
            acc.add((k as f64).powf(-s));
            cdf.push(acc.total());
        }
        let total = acc.total();
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of distinct items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `1..=n` (rank 1 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| {
            c.partial_cmp(&u).expect("invariant: CDF entries are finite, never NaN")
        }) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn exp_unit_mean_is_one() {
        let mut r = rng();
        let mean: f64 = (0..100_000).map(|_| exp_unit(&mut r)).sum::<f64>() / 100_000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let mut w = crate::Welford::new();
        for _ in 0..100_000 {
            w.add(normal(&mut r));
        }
        assert!(w.mean().abs() < 0.02, "mean {}", w.mean());
        assert!((w.variance() - 1.0).abs() < 0.03, "var {}", w.variance());
    }

    #[test]
    fn min_of_k_mean() {
        // E[min of k uniforms] = 1/(k+1).
        let mut r = rng();
        for &k in &[1.0, 10.0, 1000.0] {
            let trials = 50_000;
            let mean: f64 =
                (0..trials).map(|_| min_of_k_uniforms(k, &mut r)).sum::<f64>() / trials as f64;
            let expect = 1.0 / (k + 1.0);
            assert!(
                ((mean - expect) / expect).abs() < 0.05,
                "k={k}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn min_of_k_precision_at_extreme_k() {
        // k = 1e19: the result must be ~1e-19-scale, never rounded to 0,
        // and carry fine-grained mantissa bits.
        let mut r = rng();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = min_of_k_uniforms(1e19, &mut r);
            assert!(v > 0.0 && v < 1e-15, "v = {v}");
            distinct.insert(v.to_bits());
        }
        assert!(distinct.len() > 990, "values collapsed: {}", distinct.len());
    }

    #[test]
    fn min_of_zero_elements_is_one() {
        assert_eq!(min_of_k_uniforms(0.0, &mut rng()), 1.0);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(0.0, 0.5, &mut r), 0.0);
        assert_eq!(binomial(10.0, 0.0, &mut r), 0.0);
        assert_eq!(binomial(10.0, 1.0, &mut r), 10.0);
        let v = binomial(1.0, 0.5, &mut r);
        assert!(v == 0.0 || v == 1.0);
    }

    #[test]
    fn binomial_moments_small_regime() {
        // Exact-inversion regime: n=40, p=0.2 → var = 6.4 < 25.
        let mut r = rng();
        let mut w = crate::Welford::new();
        for _ in 0..100_000 {
            w.add(binomial(40.0, 0.2, &mut r));
        }
        assert!((w.mean() - 8.0).abs() < 0.05, "mean {}", w.mean());
        assert!((w.variance() - 6.4).abs() < 0.15, "var {}", w.variance());
    }

    #[test]
    fn binomial_moments_normal_regime() {
        let mut r = rng();
        let (n, p) = (10_000.0, 0.3);
        let mut w = crate::Welford::new();
        for _ in 0..20_000 {
            w.add(binomial(n, p, &mut r));
        }
        assert!(((w.mean() - 3000.0) / 3000.0).abs() < 0.01, "mean {}", w.mean());
        assert!(((w.variance() - 2100.0) / 2100.0).abs() < 0.1, "var {}", w.variance());
    }

    #[test]
    fn binomial_huge_n() {
        let mut r = rng();
        let n = 1e19;
        let p = 1e-18; // mean 10, tiny var → exact inversion path
        let mut w = crate::Welford::new();
        for _ in 0..50_000 {
            w.add(binomial(n, p, &mut r));
        }
        assert!((w.mean() - 10.0).abs() < 0.1, "mean {}", w.mean());
        // Normal path with huge n.
        let v = binomial(1e19, 0.5, &mut r);
        assert!((v / 5e18 - 1.0).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn binomial_p_above_half_flips() {
        let mut r = rng();
        let mut w = crate::Welford::new();
        for _ in 0..50_000 {
            w.add(binomial(20.0, 0.9, &mut r));
        }
        assert!((w.mean() - 18.0).abs() < 0.05, "mean {}", w.mean());
    }

    #[test]
    fn multinomial_sums_and_is_uniform() {
        let mut r = rng();
        let n = 1_000_000.0;
        let counts = multinomial_pow2(n, 6, &mut r);
        assert_eq!(counts.len(), 64);
        let total: f64 = counts.iter().sum();
        assert_eq!(total, n, "counts must sum exactly");
        let expect = n / 64.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                ((c - expect) / expect).abs() < 0.05,
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_zero_levels() {
        let counts = multinomial_pow2(42.0, 0, &mut rng());
        assert_eq!(counts, vec![42.0]);
    }

    #[test]
    fn multinomial_huge_n() {
        let mut r = rng();
        let counts = multinomial_pow2(1e19, 10, &mut r);
        let total: f64 = counts.iter().sum();
        // Exact up to f64 addition of ~equal magnitudes.
        assert!((total / 1e19 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 1001];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // Harmonic(1000) ≈ 7.485; P(rank 1) ≈ 0.1336.
        let p1 = f64::from(counts[1]) / 100_000.0;
        assert!((p1 - 0.1336).abs() < 0.01, "p1 = {p1}");
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut r = rng();
        let mut counts = [0u32; 11];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let p = f64::from(count) / 100_000.0;
            assert!((p - 0.1).abs() < 0.01, "rank {k}: {p}");
        }
    }
}
