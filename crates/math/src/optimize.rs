//! Derivative-free optimizers for the maximum-likelihood estimators.
//!
//! The HLL MLE cardinality estimator (§1.3's "newer cardinality estimation
//! methods", Ertl 2017) maximizes a 1-D Poisson log-likelihood; the joint
//! intersection estimator maximizes a 3-D one. Golden-section handles the
//! 1-D case (the likelihoods are unimodal in log-rate); Nelder–Mead handles
//! the 3-D case.

/// Maximize a unimodal `f` over `[lo, hi]` by golden-section search.
/// Returns `(argmax, max)`.
pub fn golden_section_max<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: u32,
) -> (f64, f64) {
    debug_assert!(lo <= hi);
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..max_iters {
        if (b - a).abs() <= tol {
            break;
        }
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    let fx = f(x);
    if fx >= fc && fx >= fd {
        (x, fx)
    } else if fc >= fd {
        (c, fc)
    } else {
        (d, fd)
    }
}

/// Maximize `f` over `R^n` with the Nelder–Mead simplex method.
///
/// `start` seeds the simplex; `scale` sets the initial simplex edge per
/// coordinate. Returns `(argmax, max)`. Standard reflection/expansion/
/// contraction/shrink coefficients (1, 2, 0.5, 0.5).
pub fn nelder_mead_max<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    start: &[f64],
    scale: &[f64],
    tol: f64,
    max_iters: u32,
) -> (Vec<f64>, f64) {
    let n = start.len();
    assert_eq!(scale.len(), n);
    assert!(n >= 1);
    // Minimize the negation internally.
    let mut g = move |x: &[f64]| -f(x);

    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((start.to_vec(), g(start)));
    for i in 0..n {
        let mut v = start.to_vec();
        v[i] += scale[i];
        let fv = g(&v);
        simplex.push((v, fv));
    }

    for _ in 0..max_iters {
        simplex.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("invariant: objective values are finite, never NaN")
        });
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= tol * (1.0 + best.abs()) {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (v, _) in &simplex[..n] {
            for (c, &x) in centroid.iter_mut().zip(v) {
                *c += x;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }

        let lerp = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&simplex[n].0)
                .map(|(&c, &w)| c + t * (c - w))
                .collect()
        };

        let reflected = lerp(1.0);
        let fr = g(&reflected);
        if fr < simplex[0].1 {
            let expanded = lerp(2.0);
            let fe = g(&expanded);
            simplex[n] = if fe < fr { (expanded, fe) } else { (reflected, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflected, fr);
        } else {
            let contracted = if fr < simplex[n].1 { lerp(0.5) } else { lerp(-0.5) };
            let fc = g(&contracted);
            if fc < simplex[n].1.min(fr) {
                simplex[n] = (contracted, fc);
            } else {
                // Shrink toward the best vertex.
                let best_v = simplex[0].0.clone();
                for entry in &mut simplex[1..] {
                    for (x, &b) in entry.0.iter_mut().zip(&best_v) {
                        *x = b + 0.5 * (*x - b);
                    }
                    entry.1 = g(&entry.0);
                }
            }
        }
    }
    simplex.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).expect("invariant: objective values are finite, never NaN")
    });
    let (x, fx) = simplex.swap_remove(0);
    (x, -fx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_peak() {
        let (x, fx) = golden_section_max(|x| -(x - 3.0) * (x - 3.0) + 7.0, -10.0, 10.0, 1e-10, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
        assert!((fx - 7.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_peak_at_boundary() {
        let (x, _) = golden_section_max(|x| x, 0.0, 5.0, 1e-10, 200);
        assert!((x - 5.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn golden_section_log_likelihood_shape() {
        // Poisson log-likelihood in log-lambda: k·t − e^t at k = 100 peaks
        // at t = ln 100.
        let (t, _) = golden_section_max(|t| 100.0 * t - t.exp(), -5.0, 20.0, 1e-12, 300);
        assert!((t - 100f64.ln()).abs() < 1e-5, "t = {t}");
    }

    #[test]
    fn nelder_mead_quadratic_bowl_3d() {
        let target = [1.0, -2.0, 3.0];
        let (x, fx) = nelder_mead_max(
            |v| {
                -v.iter()
                    .zip(&target)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f64>()
            },
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
            1e-14,
            2000,
        );
        for (got, want) in x.iter().zip(&target) {
            assert!((got - want).abs() < 1e-4, "{x:?}");
        }
        assert!(fx > -1e-7);
    }

    #[test]
    fn nelder_mead_rosenbrock_2d() {
        // Classic banana function (maximize the negation); optimum (1,1).
        let (x, _) = nelder_mead_max(
            |v| {
                let (a, b) = (v[0], v[1]);
                -((1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2))
            },
            &[-1.2, 1.0],
            &[0.5, 0.5],
            1e-15,
            5000,
        );
        assert!((x[0] - 1.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn nelder_mead_1d_degenerate() {
        let (x, _) = nelder_mead_max(|v| -(v[0] - 4.0).powi(2), &[0.0], &[1.0], 1e-14, 1000);
        assert!((x[0] - 4.0).abs() < 1e-5);
    }
}
