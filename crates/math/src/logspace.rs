//! Cancellation-free probability kernels.
//!
//! Algorithm 5 sums terms of the form
//! `[(1-b₁)^n − (1-b₂)^n]·[(1-b₁)^m − (1-b₂)^m]` where `b` can be as small
//! as `2^-(p+2^q+r)` (≈ 2^-89 for the paper's practical parameters) and `n`
//! as large as 10^19. Evaluating these literally in `f64` underflows the
//! powers to 1 and cancels the differences to 0 — the "floating point
//! errors" the paper works around with BigInts. Working in log space with
//! `ln_1p`/`exp_m1` keeps full relative precision instead:
//!
//! * `(1-b)^n = exp(n·ln(1-b))` — [`pow1m`].
//! * `(1-b₁)^n − (1-b₂)^n = (1-b₁)^n · (1 − ((1-b₂)/(1-b₁))^n)`, where the
//!   ratio's log is a *single* `ln_1p` of the exactly-representable
//!   quantity `(b₂-b₁)/(1-b₁)` — [`pow1m_diff`]. No subtraction of
//!   nearly-equal values ever happens.
//!
//! The big-float evaluation of Algorithm 5 in `hmh-core` cross-checks these
//! kernels to ~1e-14 relative error (see that crate's tests).

/// `(1 - b)^n` for `b ∈ [0, 1]`, `n ≥ 0`, without underflow of `1 - b`.
///
/// Remains fully accurate for `b` down to the smallest positive `f64` and
/// `n` up to ~1e300 (the result underflows to 0 long before the kernel
/// loses precision).
#[inline]
pub fn pow1m(b: f64, n: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&b), "b out of range: {b}");
    debug_assert!(n >= 0.0, "negative exponent: {n}");
    if b == 0.0 || n == 0.0 {
        return 1.0;
    }
    if b == 1.0 {
        return 0.0;
    }
    (n * (-b).ln_1p()).exp()
}

/// `(1 - b₁)^n − (1 - b₂)^n` for `0 ≤ b₁ ≤ b₂ ≤ 1`, cancellation-free.
///
/// This is the probability that the minimum of `n` uniforms lands in
/// `[b₁, b₂)` — the building block of Lemma 4. The naive difference loses
/// all precision once `n·b ≪ 1` (both powers round to 1); this kernel keeps
/// ~1 ulp relative accuracy across the entire range.
#[inline]
pub fn pow1m_diff(b1: f64, b2: f64, n: f64) -> f64 {
    debug_assert!(b1 <= b2, "b1 {b1} > b2 {b2}");
    if b1 == b2 || n == 0.0 {
        return 0.0;
    }
    if b2 >= 1.0 {
        return pow1m(b1, n);
    }
    // ln((1-b2)/(1-b1)) = ln(1 - (b2-b1)/(1-b1)), computed with one ln_1p.
    let ratio = (b2 - b1) / (1.0 - b1);
    let log_ratio = (-ratio).ln_1p();
    // (1-b1)^n · (1 - exp(n·log_ratio)); the second factor via exp_m1.
    pow1m(b1, n) * (-(n * log_ratio).exp_m1())
}

/// `n·ln(1 - b)` — the log of [`pow1m`], for when the power itself would
/// underflow (e.g. tail probabilities at astronomical cardinalities).
#[inline]
pub fn ln_pow1m(b: f64, n: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&b));
    n * (-b).ln_1p()
}

/// `1 - (1 - b)^n`, the occupancy probability, accurate when `n·b ≪ 1`.
#[inline]
pub fn occupancy(b: f64, n: f64) -> f64 {
    if b >= 1.0 {
        return if n == 0.0 { 0.0 } else { 1.0 };
    }
    -(n * (-b).ln_1p()).exp_m1()
}

/// `log₂(x)` as an exact integer when `x` is a power of two, else `None`.
#[inline]
pub fn exact_log2(x: u64) -> Option<u32> {
    (x.is_power_of_two()).then(|| x.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow1m_matches_powi_for_moderate_values() {
        for &b in &[0.5, 0.1, 0.01, 1e-6] {
            for &n in &[1.0, 2.0, 10.0, 100.0] {
                let exact = (1.0f64 - b).powi(n as i32);
                let got = pow1m(b, n);
                assert!(
                    (got - exact).abs() <= 1e-14 * exact.max(1e-300),
                    "b={b} n={n}: {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn pow1m_edge_cases() {
        assert_eq!(pow1m(0.0, 1e19), 1.0);
        assert_eq!(pow1m(1.0, 5.0), 0.0);
        assert_eq!(pow1m(0.3, 0.0), 1.0);
        // Tiny b with astronomical n: (1-2^-90)^(2^80) ≈ exp(-2^-10).
        let v = pow1m(2f64.powi(-90), 2f64.powi(80));
        let expect = (-(2f64.powi(-10))).exp();
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn pow1m_diff_no_cancellation_in_the_tiny_regime() {
        // n·b ≪ 1: difference ≈ n·(b2-b1); the naive f64 subtraction
        // returns exactly 0 here.
        let b1 = 2f64.powi(-80);
        let b2 = 2f64.powi(-80) + 2f64.powi(-90);
        let n = 2f64.powi(10);
        let naive = pow1m(b1, n) - pow1m(b2, n);
        assert_eq!(naive, 0.0, "sanity: naive evaluation cancels to zero");
        let got = pow1m_diff(b1, b2, n);
        let expect = n * (b2 - b1); // first-order, error O((n·b)²)
        assert!(
            ((got - expect) / expect).abs() < 1e-9,
            "{got} vs {expect}"
        );
    }

    #[test]
    fn pow1m_diff_matches_naive_when_naive_is_fine() {
        let (b1, b2, n) = (0.2, 0.5, 7.0);
        let naive = (1.0f64 - b1).powi(7) - (1.0f64 - b2).powi(7);
        let got = pow1m_diff(b1, b2, n);
        assert!((got - naive).abs() < 1e-15);
    }

    #[test]
    fn pow1m_diff_zero_width() {
        assert_eq!(pow1m_diff(0.25, 0.25, 1e6), 0.0);
    }

    #[test]
    fn pow1m_diff_upper_saturation() {
        // b2 = 1 means the interval reaches the top: result = (1-b1)^n.
        let got = pow1m_diff(0.5, 1.0, 3.0);
        assert!((got - 0.125).abs() < 1e-15, "{got}");
    }

    #[test]
    fn interval_masses_sum_to_one() {
        // Partition [0,1] into 1000 intervals; masses of the min of n
        // uniforms must sum to 1.
        for &n in &[1.0, 5.0, 1e3, 1e12] {
            let mut total = 0.0;
            for i in 0..1000 {
                let b1 = i as f64 / 1000.0;
                let b2 = (i + 1) as f64 / 1000.0;
                total += pow1m_diff(b1, b2, n);
            }
            assert!((total - 1.0).abs() < 1e-12, "n={n}: {total}");
        }
    }

    #[test]
    fn occupancy_small_and_large() {
        // n·b small: ≈ n·b.
        let got = occupancy(1e-12, 10.0);
        assert!(((got - 1e-11) / 1e-11).abs() < 1e-9);
        // n·b huge: ≈ 1.
        assert!((occupancy(0.1, 1e6) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn exact_log2_works() {
        assert_eq!(exact_log2(1), Some(0));
        assert_eq!(exact_log2(1024), Some(10));
        assert_eq!(exact_log2(3), None);
        assert_eq!(exact_log2(0), None);
    }
}
