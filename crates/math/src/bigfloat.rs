//! Arbitrary-precision binary floating point: `± mantissa · 2^exponent`.
//!
//! Exactly what Algorithm 5 needs and nothing more: the paper notes the
//! exact expected-collision computation "often results in floating point
//! errors unless BigInts are used". `hmh-core` evaluates Algorithm 5 with
//! [`BigFloat`] at a few hundred bits of precision as the reference against
//! which the fast log-space kernels are validated.
//!
//! Add/sub/mul are exact (mantissas grow); callers bound growth with
//! [`BigFloat::round_to`] or by using [`BigFloat::powi_prec`], which rounds
//! after every squaring step. Rounding truncates toward zero — at 192+ bits
//! of working precision the accumulated error is below 2^-120 relative,
//! orders of magnitude finer than anything the experiments resolve.

use crate::bigint::BigUint;
use std::cmp::Ordering;

/// A signed arbitrary-precision binary float.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigFloat {
    negative: bool,
    mant: BigUint,
    /// Value = `(-1)^negative · mant · 2^exp`.
    exp: i64,
}

impl BigFloat {
    /// Zero.
    pub fn zero() -> Self {
        Self { negative: false, mant: BigUint::zero(), exp: 0 }
    }

    /// One.
    pub fn one() -> Self {
        Self { negative: false, mant: BigUint::one(), exp: 0 }
    }

    /// Exact value `numer · 2^(-log2_denom)` — the dyadic interval
    /// boundaries `b = (2^r + j) / 2^(p+r+i)` of Algorithm 5.
    pub fn from_dyadic(numer: u64, log2_denom: i64) -> Self {
        Self { negative: false, mant: BigUint::from_u64(numer), exp: -log2_denom }.normalized()
    }

    /// Exact decomposition of a finite `f64`.
    ///
    /// # Panics
    /// On NaN or infinity.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "BigFloat::from_f64({v})");
        if v == 0.0 {
            return Self::zero();
        }
        let bits = v.abs().to_bits();
        let exp_field = (bits >> 52) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if exp_field == 0 {
            (frac, -1074) // subnormal
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        Self { negative: v < 0.0, mant: BigUint::from_u64(mant), exp }.normalized()
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.mant.is_zero()
    }

    /// True iff negative (zero is non-negative).
    pub fn is_negative(&self) -> bool {
        self.negative && !self.is_zero()
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        if self.is_zero() {
            self.clone()
        } else {
            Self { negative: !self.negative, ..self.clone() }
        }
    }

    /// Magnitude gap (in bits) beyond which [`BigFloat::add`] drops the
    /// smaller operand instead of materializing the alignment. Operands
    /// separated by more than 2^16 binary orders of magnitude cannot
    /// interact at any precision this crate uses, while exact alignment
    /// would allocate a mantissa of that many bits (powers like
    /// `(1−b)^{2^40}` have exponents near −10^9).
    pub const ADD_ALIGN_LIMIT: i64 = 1 << 16;

    /// `self + other` — exact, except that an operand more than
    /// [`Self::ADD_ALIGN_LIMIT`] binary orders of magnitude below the other
    /// is treated as zero (see that constant).
    pub fn add(&self, other: &Self) -> Self {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        // Negligibility fast path: compare the larger operand's lowest
        // retained bit against the smaller operand's highest bit.
        let top_self = self.exp + self.mant.bit_length() as i64;
        let top_other = other.exp + other.mant.bit_length() as i64;
        if self.exp > top_other + Self::ADD_ALIGN_LIMIT {
            return self.clone();
        }
        if other.exp > top_self + Self::ADD_ALIGN_LIMIT {
            return other.clone();
        }
        let e = self.exp.min(other.exp);
        let a = self.mant.shl((self.exp - e) as u64);
        let b = other.mant.shl((other.exp - e) as u64);
        if self.negative == other.negative {
            return Self { negative: self.negative, mant: a.add(&b), exp: e }.normalized();
        }
        match a.cmp_big(&b) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => {
                Self { negative: self.negative, mant: a.sub(&b), exp: e }.normalized()
            }
            Ordering::Less => {
                Self { negative: other.negative, mant: b.sub(&a), exp: e }.normalized()
            }
        }
    }

    /// `self - other`, exact.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// `self * other`, exact.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        Self {
            negative: self.negative != other.negative,
            mant: self.mant.mul(&other.mant),
            exp: self.exp + other.exp,
        }
        .normalized()
    }

    /// `self^n` by square-and-multiply, rounding each intermediate to
    /// `prec` mantissa bits (truncation toward zero).
    pub fn powi_prec(&self, n: u128, prec: u64) -> Self {
        let mut result = Self::one();
        let mut base = self.round_to(prec);
        let mut e = n;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base).round_to(prec);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base).round_to(prec);
            }
        }
        result
    }

    /// Round (truncate toward zero) to at most `prec` mantissa bits.
    pub fn round_to(&self, prec: u64) -> Self {
        let bits = self.mant.bit_length();
        if bits <= prec {
            return self.clone();
        }
        let drop = bits - prec;
        Self {
            negative: self.negative,
            mant: self.mant.shr(drop),
            exp: self.exp + drop as i64,
        }
        .normalized()
    }

    /// Strip trailing zero bits from the mantissa (keeps the value,
    /// canonicalizes the representation so `PartialEq` is semantic).
    fn normalized(mut self) -> Self {
        if self.mant.is_zero() {
            return Self::zero();
        }
        let limbs = self.mant.limbs();
        let mut tz = 0u64;
        for &l in limbs {
            if l == 0 {
                tz += 64;
            } else {
                tz += u64::from(l.trailing_zeros());
                break;
            }
        }
        if tz > 0 {
            self.mant = self.mant.shr(tz);
            self.exp += tz as i64;
        }
        self
    }

    /// Compare by value.
    pub fn cmp_val(&self, other: &Self) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => {
                return if other.negative { Ordering::Greater } else { Ordering::Less }
            }
            (false, true) => {
                return if self.negative { Ordering::Less } else { Ordering::Greater }
            }
            _ => {}
        }
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (neg, _) => {
                let mag = self.cmp_abs(other);
                if neg {
                    mag.reverse()
                } else {
                    mag
                }
            }
        }
    }

    fn cmp_abs(&self, other: &Self) -> Ordering {
        // Compare mant_a·2^ea vs mant_b·2^eb via bit positions first.
        let top_a = self.exp + self.mant.bit_length() as i64;
        let top_b = other.exp + other.mant.bit_length() as i64;
        match top_a.cmp(&top_b) {
            Ordering::Equal => {
                let e = self.exp.min(other.exp);
                self.mant
                    .shl((self.exp - e) as u64)
                    .cmp_big(&other.mant.shl((other.exp - e) as u64))
            }
            ord => ord,
        }
    }

    /// Lossy conversion to `f64` (overflow → ±inf, underflow → ±0).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let (m, bits) = self.mant.to_f64_exp();
        let total_exp = bits + self.exp;
        let v = if !(-1000..=1000).contains(&total_exp) {
            // Split the scaling to dodge intermediate overflow/underflow.
            let half = total_exp / 2;
            m * 2f64.powi(half.clamp(-1074, 1024) as i32)
                * 2f64.powi((total_exp - half).clamp(-1074, 1024) as i32)
        } else {
            m * 2f64.powi(total_exp as i32)
        };
        if self.negative {
            -v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(v: f64) -> BigFloat {
        BigFloat::from_f64(v)
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.0, 1.0, -1.0, 0.5, std::f64::consts::PI, 1e-300, 1e300, -2.5e-10] {
            assert_eq!(bf(v).to_f64(), v, "{v}");
        }
    }

    #[test]
    fn dyadic_construction() {
        // 5 / 2^3 = 0.625
        assert_eq!(BigFloat::from_dyadic(5, 3).to_f64(), 0.625);
        // (2^10 + 7) / 2^100
        let v = BigFloat::from_dyadic(1031, 100);
        assert_eq!(v.to_f64(), 1031.0 / 2f64.powi(100));
    }

    #[test]
    fn exact_addition_beyond_f64() {
        // 1 + 2^-100 − 1 = 2^-100, which plain f64 cannot do.
        let tiny = BigFloat::from_dyadic(1, 100);
        let v = BigFloat::one().add(&tiny).sub(&BigFloat::one());
        assert_eq!(v.to_f64(), 2f64.powi(-100));
    }

    #[test]
    fn signed_arithmetic() {
        assert_eq!(bf(3.0).sub(&bf(5.0)).to_f64(), -2.0);
        assert_eq!(bf(-3.0).mul(&bf(-2.0)).to_f64(), 6.0);
        assert_eq!(bf(-3.0).mul(&bf(2.0)).to_f64(), -6.0);
        assert_eq!(bf(2.5).add(&bf(-2.5)).to_f64(), 0.0);
        assert!(!bf(2.5).sub(&bf(2.5)).is_negative(), "zero is non-negative");
    }

    #[test]
    fn powers_match_f64_when_representable() {
        let v = bf(0.999755859375); // 1 - 2^-12, exact in f64
        let got = v.powi_prec(1000, 256).to_f64();
        let expect = 0.999755859375f64.powi(1000);
        assert!(((got - expect) / expect).abs() < 1e-13, "{got} vs {expect}");
    }

    #[test]
    fn huge_exponent_power() {
        // (1 - 2^-20)^(2^24) ≈ exp(-16); log-space f64 agrees to ~1e-12.
        let b = BigFloat::one().sub(&BigFloat::from_dyadic(1, 20));
        let got = b.powi_prec(1 << 24, 256).to_f64();
        let expect = crate::logspace::pow1m(2f64.powi(-20), 2f64.powi(24));
        assert!(((got - expect) / expect).abs() < 1e-10, "{got} vs {expect}");
    }

    #[test]
    fn add_drops_astronomically_smaller_operands() {
        // 1 + 2^-100000 returns 1 instantly instead of materializing a
        // 100k-bit mantissa; the gap guard triggers both ways.
        let tiny = BigFloat::from_dyadic(1, 100_000);
        assert_eq!(BigFloat::one().add(&tiny), BigFloat::one());
        assert_eq!(tiny.add(&BigFloat::one()), BigFloat::one());
        // Within the limit, addition stays exact.
        let near = BigFloat::from_dyadic(1, 1000);
        assert_ne!(BigFloat::one().add(&near), BigFloat::one());
    }

    #[test]
    fn comparisons() {
        assert_eq!(bf(1.0).cmp_val(&bf(2.0)), Ordering::Less);
        assert_eq!(bf(-1.0).cmp_val(&bf(1.0)), Ordering::Less);
        assert_eq!(bf(-1.0).cmp_val(&bf(-2.0)), Ordering::Greater);
        assert_eq!(bf(0.0).cmp_val(&bf(0.0)), Ordering::Equal);
        assert_eq!(bf(0.0).cmp_val(&bf(-1.0)), Ordering::Greater);
        // Different exponents, same leading bit position.
        assert_eq!(bf(1.5).cmp_val(&bf(1.25)), Ordering::Greater);
    }

    #[test]
    fn round_to_truncates() {
        // 1 + 2^-100 rounded to 50 bits is exactly 1.
        let v = BigFloat::one().add(&BigFloat::from_dyadic(1, 100));
        assert_eq!(v.round_to(50).to_f64(), 1.0);
        // Rounding something already small is the identity.
        assert_eq!(bf(0.75).round_to(50), bf(0.75));
    }

    #[test]
    fn normalization_makes_eq_semantic() {
        // 1.0 computed two ways compares equal structurally.
        let a = BigFloat::from_dyadic(4, 2);
        let b = BigFloat::one();
        assert_eq!(a, b);
    }
}
