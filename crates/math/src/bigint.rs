//! Minimal arbitrary-precision unsigned integers.
//!
//! Just the operations [`crate::bigfloat::BigFloat`] needs to evaluate
//! Algorithm 5 verbatim ("BigInts must be used for large n and m"):
//! addition, subtraction, multiplication, shifts and comparisons over
//! little-endian `u64` limbs. Schoolbook multiplication is plenty — the
//! mantissas involved stay under a few hundred limbs.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs, no
/// trailing zero limbs; zero is the empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        let mut out = Self { limbs: std::mem::take(&mut limbs) };
        out.normalize();
        out
    }

    /// From little-endian limbs (trailing zeros allowed; normalized here).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = Self { limbs };
        out.normalize();
        out
    }

    /// Little-endian limb view.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64) * 64 - u64::from(top.leading_zeros()),
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// `self - other`; panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_big(other) != Ordering::Less, "BigUint underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Self::from_limbs(out)
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// `self << bits`.
    pub fn shl(&self, bits: u64) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        Self::from_limbs(out)
    }

    /// `self >> bits` (floor).
    pub fn shr(&self, bits: u64) -> Self {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        Self::from_limbs(out)
    }

    /// Total-order comparison.
    pub fn cmp_big(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }

    /// Approximate as `mantissa · 2^exponent` with a 53-bit mantissa in
    /// `[0.5, 1)` — i.e. the value as an `f64` times a power of two, exact
    /// for values that fit.
    pub fn to_f64_exp(&self) -> (f64, i64) {
        let bits = self.bit_length();
        if bits == 0 {
            return (0.0, 0);
        }
        // Take the top 64 bits, then scale.
        let top = if bits <= 64 {
            self.shl(64 - bits).limbs[0]
        } else {
            self.shr(bits - 64).limbs[0]
        };
        // top has its MSB set; value ≈ top · 2^(bits-64).
        (top as f64 / 2f64.powi(64), bits as i64)
    }

    /// Lossy conversion to `f64` (may overflow to `inf`).
    pub fn to_f64(&self) -> f64 {
        let (m, e) = self.to_f64_exp();
        m * 2f64.powi(e.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_normalization() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_limbs(vec![5, 0, 0]).limbs(), &[5]);
        assert_eq!(BigUint::from_u128(u128::MAX).bit_length(), 128);
        assert_eq!(BigUint::from_u64(1).bit_length(), 1);
        assert_eq!(BigUint::from_u64(255).bit_length(), 8);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_u128(u128::MAX);
        let b = BigUint::one();
        let s = a.add(&b);
        assert_eq!(s.limbs(), &[0, 0, 1]);
        // Commutative.
        assert_eq!(b.add(&a), s);
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from_limbs(vec![0, 0, 1]); // 2^128
        let b = BigUint::one();
        assert_eq!(a.sub(&b), BigUint::from_u128(u128::MAX));
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xdead_beef_1234_5678u64;
        let b = 0xcafe_f00d_8765_4321u64;
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        assert_eq!(prod, BigUint::from_u128(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn mul_big() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = BigUint::from_u128(u128::MAX);
        let sq = a.mul(&a);
        let expect = BigUint::one()
            .shl(256)
            .sub(&BigUint::one().shl(129))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts_round_trip() {
        let a = BigUint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        for bits in [0u64, 1, 63, 64, 65, 127, 130] {
            assert_eq!(a.shl(bits).shr(bits), a, "bits={bits}");
        }
        assert_eq!(BigUint::from_u64(0b1011).shr(2).limbs(), &[0b10]);
    }

    #[test]
    fn comparison() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1u128 << 100);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp_big(&a), Ordering::Equal);
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(BigUint::from_u64(12345).to_f64(), 12345.0);
        assert_eq!(BigUint::zero().to_f64(), 0.0);
        let big = BigUint::one().shl(100);
        assert_eq!(big.to_f64(), 2f64.powi(100));
        // 2^100 + 2^50: f64 representable exactly.
        let v = big.add(&BigUint::one().shl(50));
        assert_eq!(v.to_f64(), 2f64.powi(100) + 2f64.powi(50));
    }
}
