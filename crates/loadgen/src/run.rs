//! The generator: preload a key space, then drive it from N
//! connections under a pacing discipline for a fixed wall-clock duty.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hmh_core::{format, HmhParams, HyperMinHash};
use hmh_hash::splitmix::SplitMix64;
use hmh_serve::{Client, ClientError, ClientOptions, Request, RetryBudget, MAX_PIPELINE_DEPTH};
use hmh_store::RetryPolicy;

use crate::report::{classify, classify_response, Report};

/// Relative weights of the operations in the generated stream.
///
/// Weights are integers, not probabilities; a zero weight removes the
/// operation entirely. The default mix is read-heavy (the paper's
/// serving scenario: many similarity queries against a slowly growing
/// corpus): 70% CARD, 20% PUT, 9% JACCARD, 1% LIST.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Weight of PUT (store a full sketch payload).
    pub put: u32,
    /// Weight of CARD (cardinality of one named sketch).
    pub card: u32,
    /// Weight of JACCARD (similarity of two named sketches).
    pub jaccard: u32,
    /// Weight of LIST (whole-store name listing).
    pub list: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Self { put: 20, card: 70, jaccard: 9, list: 1 }
    }
}

impl Mix {
    fn total(&self) -> u64 {
        u64::from(self.put) + u64::from(self.card) + u64::from(self.jaccard) + u64::from(self.list)
    }

    /// Map a uniform roll in `0..total()` to an operation.
    fn pick(&self, roll: u64) -> Op {
        let mut r = roll;
        if r < u64::from(self.put) {
            return Op::Put;
        }
        r -= u64::from(self.put);
        if r < u64::from(self.card) {
            return Op::Card;
        }
        r -= u64::from(self.card);
        if r < u64::from(self.jaccard) {
            return Op::Jaccard;
        }
        Op::List
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Put,
    Card,
    Jaccard,
    List,
}

/// How operations are scheduled onto the wire.
#[derive(Debug, Clone, Copy)]
pub enum Pacing {
    /// Issue the next operation as soon as the previous one completes.
    /// Offered load equals achieved load; measures capacity.
    Closed,
    /// Issue operations on a fixed schedule of `ops_per_sec` spread
    /// evenly across the connections, independent of completions.
    /// Workers behind schedule issue back-to-back; latency is measured
    /// from the *scheduled* start so backlog shows up in p99 instead
    /// of silently throttling the offered load.
    Open {
        /// Total scheduled operation rate across all connections.
        ops_per_sec: f64,
    },
}

/// One load phase's configuration.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Master seed; every worker derives its own deterministic stream.
    pub seed: u64,
    /// Concurrent connections (one OS thread + one TCP client each).
    pub connections: usize,
    /// Wall-clock duty: no operation *starts* after this elapses.
    pub duty: Duration,
    /// Operation mix.
    pub mix: Mix,
    /// Pacing discipline.
    pub pacing: Pacing,
    /// Per-operation deadline budget stamped on the wire (v2 frames).
    /// `None` sends v1 frames with no deadline.
    pub budget: Option<Duration>,
    /// Frames each connection keeps in flight per exchange. `1` is the
    /// classic one-request-one-reply loop; `2..=MAX_PIPELINE_DEPTH`
    /// submits that many operations per [`Client::pipeline`] call, so
    /// one round trip (and, server-side, one vectored write) carries
    /// the whole window.
    pub pipeline: usize,
    /// Number of distinct sketch names (preloaded before measuring, so
    /// reads never see NOT_FOUND).
    pub keys: usize,
    /// Items folded into the payload sketch each PUT carries.
    pub payload_items: u64,
    /// Base client options. The generator installs its own retry
    /// policy (one bounded retry through a shared [`RetryBudget`]) and
    /// the `budget` above on top of these; timeouts are taken as-is
    /// and are what bounds a worst-case operation — the harness can
    /// slow down under overload but can never hang.
    pub client: ClientOptions,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            seed: 0xB10C_D05E,
            connections: 2,
            duty: Duration::from_secs(2),
            mix: Mix::default(),
            pacing: Pacing::Closed,
            budget: None,
            pipeline: 1,
            keys: 64,
            payload_items: 256,
            client: ClientOptions {
                connect_timeout: Duration::from_millis(500),
                read_timeout: Duration::from_secs(2),
                write_timeout: Duration::from_secs(2),
                ..ClientOptions::default()
            },
        }
    }
}

/// Why a load phase could not run.
#[derive(Debug)]
pub enum LoadgenError {
    /// The options are unusable (zero connections, empty mix, ...).
    Config(String),
    /// Preloading the key space failed — the target is not serving.
    Preload {
        /// The sketch name that failed to store.
        name: String,
        /// The client error it failed with.
        error: ClientError,
    },
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Config(why) => write!(f, "bad load configuration: {why}"),
            LoadgenError::Preload { name, error } => {
                write!(f, "preload of {name:?} failed: {error}")
            }
        }
    }
}

impl std::error::Error for LoadgenError {}

/// The deterministic name of key `i`.
fn key_name(i: usize) -> String {
    format!("loadgen/k{i}")
}

/// Build the fixed payload sketch every PUT carries, pre-encoded once.
/// Parameters are the paper's serving defaults scaled down one notch
/// (p=10) so a payload is a few KiB — representative, not dominant.
fn payload(seed: u64, items: u64) -> Result<Vec<u8>, LoadgenError> {
    let params = HmhParams::new(10, 6, 10)
        .map_err(|e| LoadgenError::Config(format!("payload parameters: {e}")))?;
    let base = seed.wrapping_mul(0x1000).wrapping_add(1);
    let sketch = HyperMinHash::from_items(params, base..base + items.max(1));
    Ok(format::encode(&sketch))
}

/// The client options a worker uses: caller timeouts, the phase's
/// deadline budget, and exactly one bounded retry bought from a
/// process-wide [`RetryBudget`] — enough to smooth the benign
/// shed-race resets, impossible to amplify into a storm.
fn worker_client_options(opts: &LoadOptions, budget: &Arc<RetryBudget>) -> ClientOptions {
    // `none()` never sleeps; re-opening one extra attempt on top of it
    // keeps retries instant (the shed-race reset reconnects right away)
    // while the shared budget bounds how many such retries the whole
    // worker fleet can buy.
    let mut retry = RetryPolicy::none();
    retry.max_attempts = 2;
    retry.base_delay = Duration::from_millis(1);
    retry.max_delay = Duration::from_millis(5);
    ClientOptions {
        retry,
        op_budget: opts.budget,
        budget: Some(Arc::clone(budget)),
        ..opts.client.clone()
    }
}

/// Run one load phase against `addr` and return the merged report.
///
/// Deterministic given the seed *in which operations are generated*;
/// how many complete within the duty is the measurement.
pub fn run(addr: SocketAddr, opts: &LoadOptions) -> Result<Report, LoadgenError> {
    if opts.connections == 0 {
        return Err(LoadgenError::Config("connections must be > 0".into()));
    }
    if opts.keys == 0 {
        return Err(LoadgenError::Config("keys must be > 0".into()));
    }
    if opts.mix.total() == 0 {
        return Err(LoadgenError::Config("the op mix has zero total weight".into()));
    }
    if opts.pipeline == 0 || opts.pipeline > MAX_PIPELINE_DEPTH {
        return Err(LoadgenError::Config(format!(
            "pipeline depth {} is outside 1..={MAX_PIPELINE_DEPTH}",
            opts.pipeline
        )));
    }
    let payload = payload(opts.seed, opts.payload_items)?;

    // Preload with patient retries and no deadline: reads during the
    // measured phase must never see NOT_FOUND, and a slow cold start
    // must not fail the harness.
    let mut loader = Client::with_options(
        addr,
        ClientOptions { retry: RetryPolicy::default(), ..opts.client.clone() },
    );
    for i in 0..opts.keys {
        let name = key_name(i);
        loader
            .put_raw(&name, &payload)
            .map_err(|error| LoadgenError::Preload { name: name.clone(), error })?;
    }
    drop(loader);

    let retry_budget = Arc::new(RetryBudget::default());
    let worker_opts = worker_client_options(opts, &retry_budget);
    let mut merged = Report::default();
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(opts.connections);
        for w in 0..opts.connections {
            let worker_opts = worker_opts.clone();
            let payload = &payload;
            handles.push(scope.spawn(move || worker(addr, opts, worker_opts, payload, w)));
        }
        for handle in handles {
            merged.merge(handle.join().expect("invariant: loadgen workers do not panic"));
        }
    });
    merged.finalize();
    Ok(merged)
}

/// Draw the next operation from a worker's seeded stream.
///
/// Both the serial and the pipelined loops consume the stream through
/// this one function (three rolls per op, in a fixed order), so the
/// generated workload at a given seed is identical at every pipeline
/// depth — only the framing onto the wire differs.
fn next_request(rng: &mut SplitMix64, opts: &LoadOptions, payload: &[u8]) -> Request {
    let roll = rng.next_u64() % opts.mix.total();
    let key = (rng.next_u64() % opts.keys as u64) as usize;
    let key2 = (rng.next_u64() % opts.keys as u64) as usize;
    match opts.mix.pick(roll) {
        Op::Put => Request::Put { name: key_name(key), sketch: payload.to_vec() },
        Op::Card => Request::Card { name: key_name(key) },
        Op::Jaccard => Request::Jaccard { a: key_name(key), b: key_name(key2) },
        Op::List => Request::List,
    }
}

/// One connection's loop: seeded op stream, pacing, classification.
fn worker(
    addr: SocketAddr,
    opts: &LoadOptions,
    client_opts: ClientOptions,
    payload: &[u8],
    index: usize,
) -> Report {
    if opts.pipeline > 1 {
        return worker_pipelined(addr, opts, client_opts, payload, index);
    }
    let mut rng = SplitMix64::new(SplitMix64::derive(opts.seed, index as u64));
    let mut client = Client::with_options(addr, client_opts);
    let mut report = Report::default();
    let started = Instant::now();
    let end = started + opts.duty;
    // Open-loop schedule: this worker owns every `connections`-th slot
    // of the global schedule.
    let interval = match opts.pacing {
        Pacing::Open { ops_per_sec } if ops_per_sec > 0.0 => {
            Some(Duration::from_secs_f64(opts.connections as f64 / ops_per_sec))
        }
        _ => None,
    };
    let mut issued: u32 = 0;
    while Instant::now() < end {
        // The latency clock starts at the *scheduled* time under open
        // pacing (backlog counts as latency), at the issue time under
        // closed pacing.
        let op_start = match interval {
            Some(step) => {
                let scheduled = started + step.mul_f64(f64::from(issued));
                let now = Instant::now();
                if scheduled > now {
                    thread::sleep(scheduled - now);
                }
                if scheduled >= end {
                    break;
                }
                scheduled
            }
            None => Instant::now(),
        };
        issued = issued.saturating_add(1);
        let outcome = match next_request(&mut rng, opts, payload) {
            Request::Put { name, .. } => classify(&client.put_raw(&name, payload)),
            Request::Card { name } => classify(&client.card(&name)),
            Request::Jaccard { a, b } => classify(&client.jaccard(&a, &b)),
            _ => classify(&client.list()),
        };
        let latency_us = u64::try_from(op_start.elapsed().as_micros()).unwrap_or(u64::MAX);
        report.record(outcome, latency_us);
    }
    report.elapsed = started.elapsed();
    report
}

/// One connection's loop at pipeline depth > 1: each iteration draws a
/// window of operations from the same seeded stream the serial loop
/// uses, submits the window as one pipelined exchange, and classifies
/// every reply slot individually.
fn worker_pipelined(
    addr: SocketAddr,
    opts: &LoadOptions,
    client_opts: ClientOptions,
    payload: &[u8],
    index: usize,
) -> Report {
    let mut rng = SplitMix64::new(SplitMix64::derive(opts.seed, index as u64));
    let mut client = Client::with_options(addr, client_opts);
    let mut report = Report::default();
    let started = Instant::now();
    let end = started + opts.duty;
    let interval = match opts.pacing {
        Pacing::Open { ops_per_sec } if ops_per_sec > 0.0 => {
            Some(Duration::from_secs_f64(opts.connections as f64 / ops_per_sec))
        }
        _ => None,
    };
    let mut issued: u32 = 0;
    while Instant::now() < end {
        // Claim this window's schedule slots. Under open pacing the
        // exchange is issued at the *first* op's slot and carries the
        // later slots early: the offered schedule is unchanged, the
        // wire just sees it in bursts of `pipeline` — which is the
        // point. Latency is still measured from each op's own slot
        // (backlog counts as latency; completing before one's slot
        // counts as zero), and no op whose slot falls past the duty
        // edge is issued.
        let mut starts: Vec<Instant> = Vec::with_capacity(opts.pipeline);
        match interval {
            Some(step) => {
                let first = started + step.mul_f64(f64::from(issued));
                let now = Instant::now();
                if first > now {
                    thread::sleep(first - now);
                }
                if first >= end {
                    break;
                }
                starts.push(first);
                for k in 1..opts.pipeline as u32 {
                    let slot = started + step.mul_f64(f64::from(issued.saturating_add(k)));
                    if slot >= end {
                        break;
                    }
                    starts.push(slot);
                }
            }
            None => starts.resize(opts.pipeline, Instant::now()),
        }
        issued = issued.saturating_add(starts.len() as u32);
        let requests: Vec<Request> =
            starts.iter().map(|_| next_request(&mut rng, opts, payload)).collect();
        match client.pipeline(&requests) {
            Ok(replies) => {
                let done = Instant::now();
                for (slot, reply) in starts.iter().zip(&replies) {
                    let latency_us =
                        u64::try_from(done.saturating_duration_since(*slot).as_micros())
                            .unwrap_or(u64::MAX);
                    report.record(classify_response(reply), latency_us);
                }
            }
            Err(error) => {
                // A whole-exchange failure takes the window down
                // together: every slot records the same outcome.
                let outcome = classify::<()>(&Err(error));
                for _ in &starts {
                    report.record(outcome, 0);
                }
            }
        }
    }
    report.elapsed = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_pick_maps_rolls_to_ops_by_weight() {
        let mix = Mix { put: 2, card: 3, jaccard: 4, list: 1 };
        assert_eq!(mix.total(), 10);
        let picks: Vec<Op> = (0..10).map(|r| mix.pick(r)).collect();
        assert_eq!(picks.iter().filter(|&&o| o == Op::Put).count(), 2);
        assert_eq!(picks.iter().filter(|&&o| o == Op::Card).count(), 3);
        assert_eq!(picks.iter().filter(|&&o| o == Op::Jaccard).count(), 4);
        assert_eq!(picks.iter().filter(|&&o| o == Op::List).count(), 1);
        // Zero-weight ops are never picked.
        let no_list = Mix { put: 1, card: 1, jaccard: 1, list: 0 };
        assert!((0..3).all(|r| no_list.pick(r) != Op::List));
    }

    #[test]
    fn bad_configurations_fail_typed_without_dialing() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let zero_conn = LoadOptions { connections: 0, ..LoadOptions::default() };
        assert!(matches!(run(addr, &zero_conn), Err(LoadgenError::Config(_))));
        let zero_keys = LoadOptions { keys: 0, ..LoadOptions::default() };
        assert!(matches!(run(addr, &zero_keys), Err(LoadgenError::Config(_))));
        let empty_mix = LoadOptions {
            mix: Mix { put: 0, card: 0, jaccard: 0, list: 0 },
            ..LoadOptions::default()
        };
        assert!(matches!(run(addr, &empty_mix), Err(LoadgenError::Config(_))));
    }

    #[test]
    fn pipeline_depth_is_validated() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        for depth in [0, MAX_PIPELINE_DEPTH + 1] {
            let opts = LoadOptions { pipeline: depth, ..LoadOptions::default() };
            assert!(matches!(run(addr, &opts), Err(LoadgenError::Config(_))));
        }
    }

    #[test]
    fn op_stream_is_identical_at_every_pipeline_depth() {
        // The pipelined worker must price the *same* workload, not a
        // reshuffled one: windowing the stream into batches of 8 draws
        // exactly the ops the serial loop would have drawn one by one.
        let opts = LoadOptions::default();
        let payload = payload(opts.seed, 8).expect("payload");
        let mut serial_rng = SplitMix64::new(SplitMix64::derive(opts.seed, 3));
        let mut windowed_rng = SplitMix64::new(SplitMix64::derive(opts.seed, 3));
        let serial: Vec<Request> =
            (0..64).map(|_| next_request(&mut serial_rng, &opts, &payload)).collect();
        let mut windowed: Vec<Request> = Vec::new();
        for _ in 0..8 {
            windowed.extend((0..8).map(|_| next_request(&mut windowed_rng, &opts, &payload)));
        }
        assert_eq!(serial, windowed);
    }

    #[test]
    fn payload_is_deterministic_per_seed() {
        let a = payload(7, 128).expect("payload");
        let b = payload(7, 128).expect("payload");
        let c = payload(8, 128).expect("payload");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn preload_failure_is_typed_with_the_failing_name() {
        // Nothing listens on a reserved port: preload must fail typed,
        // quickly (bounded by connect_timeout × default retries).
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let opts = LoadOptions {
            client: ClientOptions {
                connect_timeout: Duration::from_millis(50),
                retry: RetryPolicy::none(),
                ..ClientOptions::default()
            },
            ..LoadOptions::default()
        };
        match run(addr, &opts) {
            Err(LoadgenError::Preload { name, .. }) => assert_eq!(name, key_name(0)),
            other => panic!("expected a preload failure, got {other:?}"),
        }
    }
}
