//! Seeded load generation and the overload sweep for the serving tier.
//!
//! The paper's setting is a service answering set-similarity queries
//! under heavy traffic; this crate is the harness that prices that
//! claim for the implementation. It drives a live daemon or routed
//! cluster over the real wire protocol with a deterministic, seeded
//! operation stream and reports *goodput* — successful operations per
//! second — alongside latency percentiles and a full taxonomy of how
//! the non-successful operations failed.
//!
//! Two pacing disciplines:
//!
//! * **Closed loop** ([`Pacing::Closed`]): each connection issues its
//!   next operation the moment the previous one completes. Offered
//!   load self-limits to the service's capacity; this is how peak
//!   throughput is measured.
//! * **Open loop** ([`Pacing::Open`]): operations are issued on a
//!   fixed schedule regardless of completions (workers that fall
//!   behind issue back-to-back and latency is measured from the
//!   *scheduled* start, so queueing delay is visible, not hidden).
//!   This is how overload is applied: the schedule does not slow down
//!   just because the server did.
//!
//! Orthogonal to pacing, [`LoadOptions::pipeline`] sets how many
//! frames each connection keeps in flight per exchange: depth 1 is the
//! classic one-request-one-reply loop; deeper windows ride the
//! protocol's pipelining (one round trip — and server-side one
//! vectored write — per window). The op stream at a given seed is
//! identical at every depth, so pipelined and serial runs price the
//! same workload.
//!
//! The overload sweep ([`sweep`]) measures closed-loop peak, then
//! applies open-loop offered load at increasing multiples of that
//! peak and checks the graceful-degradation contract
//! ([`degradation_ok`]): goodput stays within a band of peak, every
//! rejection is typed (BUSY / EXPIRED / retry-budget / unavailable —
//! never a hang, rarely a reset), and every phase finishes inside its
//! wall-clock bound. When the sweep runs pipelined it calibrates both
//! a serial and a pipelined peak ([`Sweep::pipeline_speedup`]) so the
//! artifact prices what pipelining buys on that machine. Results
//! serialize to `BENCH_serve.json` ([`Sweep::to_json`]), the committed
//! perf-trajectory artifact.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod report;
mod run;
mod sweep;

pub use report::{classify_response, Outcome, Report};
pub use run::{run, LoadOptions, LoadgenError, Mix, Pacing};
pub use sweep::{degradation_ok, sweep, Sweep, SweepOptions, SweepRow};
