//! Outcome taxonomy and the per-phase report.

use std::time::Duration;

use hmh_serve::{ClientError, ErrCode, Response};

/// How one operation ended, from the load generator's point of view.
///
/// The split that matters for the degradation contract is *typed*
/// versus *untyped*: a typed outcome is the service saying "no" in a
/// way the caller can act on (back off, expire, route elsewhere); an
/// untyped one is a transport failure the caller can only guess about.
/// Graceful degradation means overload moves traffic into the typed
/// rows, never the untyped one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The operation succeeded.
    Ok,
    /// Typed BUSY: the server shed the connection at the accept queue.
    Busy,
    /// Typed EXPIRED: the deadline budget was spent (server-side
    /// refusal of dead work, or the client expired it locally).
    Expired,
    /// Typed local refusal: the shared retry budget had no token.
    RetryExhausted,
    /// Typed refusal without a dial: every replica's breaker was open,
    /// or a routing tier answered UNAVAILABLE for the owning group.
    Unavailable,
    /// Any other typed server answer (NOT_FOUND, TOO_LARGE, ...). The
    /// server was healthy enough to parse, decide and answer; these
    /// are contract bugs in the workload, not overload collapse.
    TypedOther,
    /// Untyped transport failure: reset, timeout, refused connection,
    /// or an unparseable reply. The failure mode overload must not
    /// amplify.
    Transport,
}

/// Classify a client result for accounting.
pub fn classify<T>(result: &Result<T, ClientError>) -> Outcome {
    match result {
        Ok(_) => Outcome::Ok,
        Err(ClientError::Busy) => Outcome::Busy,
        Err(ClientError::Expired) => Outcome::Expired,
        Err(ClientError::RetryBudgetExhausted) => Outcome::RetryExhausted,
        Err(ClientError::BreakerOpen { .. }) => Outcome::Unavailable,
        Err(ClientError::Server { code: ErrCode::Unavailable, .. }) => Outcome::Unavailable,
        Err(
            ClientError::ReadOnly
            | ClientError::NotFound(_)
            | ClientError::Server { .. }
            | ClientError::ItemTooLarge { .. }
            | ClientError::PipelineOverflow { .. },
        ) => Outcome::TypedOther,
        Err(
            ClientError::Io(_)
            | ClientError::BadReply(_)
            | ClientError::Format(_)
            | ClientError::AllReplicasDown { .. },
        ) => Outcome::Transport,
    }
}

/// Classify one reply slot of a pipelined exchange.
///
/// [`Client::pipeline`](hmh_serve::Client::pipeline) returns the raw
/// per-slot responses so one refused frame does not hide its siblings;
/// this maps each slot onto the same taxonomy `classify` applies to
/// whole-call errors. Typed per-frame refusals (EXPIRED, READ_ONLY,
/// server errors) land in their usual rows; any payload-bearing reply
/// counts as success.
pub fn classify_response(response: &Response) -> Outcome {
    match response {
        Response::Busy => Outcome::Busy,
        Response::Expired => Outcome::Expired,
        Response::Err { code: ErrCode::Unavailable, .. } => Outcome::Unavailable,
        Response::ReadOnly | Response::Err { .. } => Outcome::TypedOther,
        _ => Outcome::Ok,
    }
}

/// Counters and latency sample for one load phase.
///
/// Latencies are recorded for successful operations only (microseconds
/// per op), so the percentiles price the service a caller actually
/// received, not the speed of rejections.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// Operations issued.
    pub attempted: u64,
    /// Operations that succeeded.
    pub ok: u64,
    /// Typed BUSY rejections.
    pub busy: u64,
    /// Typed EXPIRED rejections.
    pub expired: u64,
    /// Typed retry-budget refusals (local, zero dials spent).
    pub retry_exhausted: u64,
    /// Typed unavailable / breaker-open refusals.
    pub unavailable: u64,
    /// Other typed server answers.
    pub typed_other: u64,
    /// Untyped transport failures.
    pub transport: u64,
    /// Wall-clock time the phase actually took.
    pub elapsed: Duration,
    /// Success latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl Report {
    /// Fold one classified outcome (and its latency, if successful)
    /// into the counters.
    pub(crate) fn record(&mut self, outcome: Outcome, latency_us: u64) {
        self.attempted += 1;
        match outcome {
            Outcome::Ok => {
                self.ok += 1;
                self.latencies_us.push(latency_us);
            }
            Outcome::Busy => self.busy += 1,
            Outcome::Expired => self.expired += 1,
            Outcome::RetryExhausted => self.retry_exhausted += 1,
            Outcome::Unavailable => self.unavailable += 1,
            Outcome::TypedOther => self.typed_other += 1,
            Outcome::Transport => self.transport += 1,
        }
    }

    /// Merge another worker's report into this one.
    pub(crate) fn merge(&mut self, other: Report) {
        self.attempted += other.attempted;
        self.ok += other.ok;
        self.busy += other.busy;
        self.expired += other.expired;
        self.retry_exhausted += other.retry_exhausted;
        self.unavailable += other.unavailable;
        self.typed_other += other.typed_other;
        self.transport += other.transport;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.latencies_us.extend(other.latencies_us);
    }

    /// Sort the latency sample; called once after all workers merged.
    pub(crate) fn finalize(&mut self) {
        self.latencies_us.sort_unstable();
    }

    /// Successful operations per second of wall clock.
    pub fn goodput(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// All rejections the service (or client) answered with a type.
    pub fn typed_rejections(&self) -> u64 {
        self.busy + self.expired + self.retry_exhausted + self.unavailable
    }

    /// Failures with no typed answer — the metastable failure mode.
    pub fn untyped_failures(&self) -> u64 {
        self.transport
    }

    /// The `k`-th percentile (0.0 ..= 1.0) of success latency, in
    /// microseconds, by the nearest-rank convention
    /// (`ceil(k·n)`-th smallest). Zero when nothing succeeded.
    pub fn percentile_us(&self, k: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let last = self.latencies_us.len() - 1;
        let rank = (self.latencies_us.len() as f64 * k.clamp(0.0, 1.0)).ceil() as usize;
        self.latencies_us[rank.saturating_sub(1).min(last)]
    }

    /// Median success latency in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.percentile_us(0.50)
    }

    /// 99th-percentile success latency in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.percentile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_typed_untyped_split() {
        assert_eq!(classify::<()>(&Ok(())), Outcome::Ok);
        assert_eq!(classify::<()>(&Err(ClientError::Busy)), Outcome::Busy);
        assert_eq!(classify::<()>(&Err(ClientError::Expired)), Outcome::Expired);
        assert_eq!(
            classify::<()>(&Err(ClientError::RetryBudgetExhausted)),
            Outcome::RetryExhausted
        );
        assert_eq!(
            classify::<()>(&Err(ClientError::BreakerOpen { replicas: 3 })),
            Outcome::Unavailable
        );
        assert_eq!(
            classify::<()>(&Err(ClientError::Server {
                code: ErrCode::Unavailable,
                message: "group \"b\" is down".into(),
            })),
            Outcome::Unavailable
        );
        assert_eq!(
            classify::<()>(&Err(ClientError::NotFound("x".into()))),
            Outcome::TypedOther
        );
        assert_eq!(
            classify::<()>(&Err(ClientError::Io(std::io::Error::other("reset")))),
            Outcome::Transport
        );
        assert_eq!(
            classify::<()>(&Err(ClientError::AllReplicasDown {
                attempts: 2,
                last_errors: vec![],
            })),
            Outcome::Transport
        );
    }

    #[test]
    fn reply_slots_classify_like_whole_call_errors() {
        assert_eq!(classify_response(&Response::Ok), Outcome::Ok);
        assert_eq!(classify_response(&Response::Value(42.0)), Outcome::Ok);
        assert_eq!(classify_response(&Response::Names(vec![])), Outcome::Ok);
        assert_eq!(classify_response(&Response::Busy), Outcome::Busy);
        assert_eq!(classify_response(&Response::Expired), Outcome::Expired);
        assert_eq!(classify_response(&Response::ReadOnly), Outcome::TypedOther);
        assert_eq!(
            classify_response(&Response::Err {
                code: ErrCode::Unavailable,
                message: "group \"b\" is down".into(),
            }),
            Outcome::Unavailable
        );
        assert_eq!(
            classify_response(&Response::Err {
                code: ErrCode::NotFound,
                message: "no sketch named \"x\"".into(),
            }),
            Outcome::TypedOther
        );
    }

    #[test]
    fn percentiles_and_goodput_from_a_known_sample() {
        let mut r = Report::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            r.record(Outcome::Ok, us);
        }
        r.record(Outcome::Busy, 0);
        r.record(Outcome::Expired, 0);
        r.record(Outcome::Transport, 0);
        r.elapsed = Duration::from_secs(2);
        r.finalize();

        assert_eq!(r.attempted, 13);
        assert_eq!(r.ok, 10);
        assert_eq!(r.typed_rejections(), 2);
        assert_eq!(r.untyped_failures(), 1);
        assert!((r.goodput() - 5.0).abs() < 1e-9);
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p99_us(), 1000);
        assert_eq!(r.percentile_us(0.0), 10);
        assert_eq!(r.percentile_us(1.0), 1000);

        let empty = Report::default();
        assert_eq!(empty.p50_us(), 0);
    }

    #[test]
    fn merge_accumulates_and_keeps_the_longest_elapsed() {
        let mut a = Report::default();
        a.record(Outcome::Ok, 5);
        a.elapsed = Duration::from_secs(1);
        let mut b = Report::default();
        b.record(Outcome::Ok, 3);
        b.record(Outcome::Busy, 0);
        b.elapsed = Duration::from_secs(3);
        a.merge(b);
        a.finalize();
        assert_eq!(a.attempted, 3);
        assert_eq!(a.ok, 2);
        assert_eq!(a.busy, 1);
        assert_eq!(a.elapsed, Duration::from_secs(3));
        assert_eq!(a.latencies_us, vec![3, 5]);
    }
}
