//! The overload sweep: measure closed-loop peak, then apply open-loop
//! offered load at multiples of it and check graceful degradation.

use std::net::SocketAddr;
use std::time::Duration;

use crate::report::Report;
use crate::run::{run, LoadOptions, LoadgenError, Pacing};

/// Sweep configuration. Everything not listed here is taken from the
/// embedded [`LoadOptions`] base (seed, mix, keys, timeouts, budget).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Base phase configuration; the calibration phase runs it as-is
    /// under closed pacing.
    pub base: LoadOptions,
    /// Offered-load multipliers applied to the measured peak, in
    /// order. The degradation contract is checked at the last (the
    /// deepest overload).
    pub multipliers: Vec<u32>,
    /// Extra connections per multiplier step: overload phase `m` runs
    /// with `base.connections × m` connections (capped at
    /// [`SweepOptions::max_connections`]) so the schedule can actually
    /// be offered while ops block.
    pub max_connections: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self { base: LoadOptions::default(), multipliers: vec![1, 2, 4], max_connections: 16 }
    }
}

/// One overload phase's result.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Offered load as a multiple of the measured peak.
    pub multiplier: u32,
    /// The scheduled (offered) operation rate, ops/sec.
    pub offered_ops_per_sec: f64,
    /// Connections used for this phase.
    pub connections: usize,
    /// The measured phase report.
    pub report: Report,
}

/// The whole sweep: calibration plus one row per multiplier.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Master seed the op streams derive from.
    pub seed: u64,
    /// Wall-clock duty of each phase, seconds.
    pub duty_secs: f64,
    /// Logical CPUs of the driving machine (a single-core box
    /// serializes generator and server; peak numbers are not
    /// comparable across different counts).
    pub cpus: usize,
    /// Pipeline depth the overload rows ran at (1 = serial).
    pub pipeline_depth: usize,
    /// Calibration phase (closed loop at base concurrency), always
    /// measured *unpipelined* so the serial baseline is printed next to
    /// the pipelined one at any depth.
    pub peak: Report,
    /// Second calibration at [`Sweep::pipeline_depth`] frames in
    /// flight; present only when the sweep ran with depth > 1. The
    /// side-by-side pair prices what pipelining buys on this machine.
    pub peak_pipelined: Option<Report>,
    /// Overload phases, in multiplier order.
    pub rows: Vec<SweepRow>,
}

impl Sweep {
    /// The effective peak goodput the overload rows are priced
    /// against, ops/sec: the pipelined calibration when one ran,
    /// otherwise the serial one.
    pub fn peak_goodput(&self) -> f64 {
        self.peak_pipelined.as_ref().unwrap_or(&self.peak).goodput()
    }

    /// Pipelined-over-serial goodput ratio, when both calibrations ran.
    pub fn pipeline_speedup(&self) -> Option<f64> {
        let pipelined = self.peak_pipelined.as_ref()?;
        Some(pipelined.goodput() / self.peak.goodput().max(1e-9))
    }

    /// Render the sweep as the `BENCH_serve.json` artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"serve_overload\",\n");
        out.push_str(&format!("  \"cpus\": {},\n", self.cpus));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"duty_secs\": {},\n", fmt_f64(self.duty_secs)));
        out.push_str(&format!("  \"pipeline_depth\": {},\n", self.pipeline_depth));
        out.push_str(&format!(
            "  \"peak\": {{\"goodput_ops_per_sec\": {}, \"p50_us\": {}, \"p99_us\": {}}},\n",
            fmt_f64(self.peak.goodput()),
            self.peak.p50_us(),
            self.peak.p99_us()
        ));
        if let Some(pipelined) = &self.peak_pipelined {
            out.push_str(&format!(
                "  \"peak_pipelined\": {{\"goodput_ops_per_sec\": {}, \"p50_us\": {}, \
                 \"p99_us\": {}}},\n",
                fmt_f64(pipelined.goodput()),
                pipelined.p50_us(),
                pipelined.p99_us()
            ));
            out.push_str(&format!(
                "  \"pipeline_speedup\": {},\n",
                fmt_f64(self.pipeline_speedup().unwrap_or(0.0))
            ));
        }
        out.push_str("  \"sweep\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let r = &row.report;
            out.push_str(&format!(
                "    {{\"multiplier\": {}, \"connections\": {}, \
                 \"offered_ops_per_sec\": {}, \"goodput_ops_per_sec\": {}, \
                 \"goodput_vs_peak\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"ok\": {}, \"busy\": {}, \"expired\": {}, \"retry_exhausted\": {}, \
                 \"unavailable\": {}, \"typed_other\": {}, \"transport\": {}}}{}\n",
                row.multiplier,
                row.connections,
                fmt_f64(row.offered_ops_per_sec),
                fmt_f64(r.goodput()),
                fmt_f64(r.goodput() / self.peak_goodput().max(1e-9)),
                r.p50_us(),
                r.p99_us(),
                r.ok,
                r.busy,
                r.expired,
                r.retry_exhausted,
                r.unavailable,
                r.typed_other,
                r.transport,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-safe float: finite, fixed precision, no scientific notation.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0".to_string()
    }
}

/// Run the full sweep against `addr`.
///
/// Phase order: one closed-loop *serial* calibration at base
/// concurrency; when `base.pipeline > 1`, a second closed-loop
/// calibration at that depth (the side-by-side pair prices what
/// pipelining buys); then one open-loop phase per multiplier offering
/// `multiplier × effective peak` scheduled ops/sec from
/// `base.connections × multiplier` connections, all at `base.pipeline`
/// frames in flight.
pub fn sweep(addr: SocketAddr, opts: &SweepOptions) -> Result<Sweep, LoadgenError> {
    if opts.multipliers.is_empty() {
        return Err(LoadgenError::Config("the sweep needs at least one multiplier".into()));
    }
    if opts.multipliers.contains(&0) {
        return Err(LoadgenError::Config("multiplier 0 offers no load".into()));
    }
    let calibration = LoadOptions { pacing: Pacing::Closed, pipeline: 1, ..opts.base.clone() };
    let peak = run(addr, &calibration)?;
    if peak.ok == 0 {
        return Err(LoadgenError::Config(
            "calibration measured zero goodput; nothing to sweep against".into(),
        ));
    }
    let peak_pipelined = if opts.base.pipeline > 1 {
        let deep = LoadOptions { pacing: Pacing::Closed, ..opts.base.clone() };
        let report = run(addr, &deep)?;
        if report.ok == 0 {
            return Err(LoadgenError::Config(
                "pipelined calibration measured zero goodput; nothing to sweep against".into(),
            ));
        }
        Some(report)
    } else {
        None
    };
    let peak_rate = peak_pipelined.as_ref().unwrap_or(&peak).goodput();

    let mut rows = Vec::with_capacity(opts.multipliers.len());
    for &multiplier in &opts.multipliers {
        let connections = opts
            .base
            .connections
            .saturating_mul(multiplier as usize)
            .clamp(1, opts.max_connections.max(1));
        let offered = peak_rate * f64::from(multiplier);
        let phase = LoadOptions {
            connections,
            pacing: Pacing::Open { ops_per_sec: offered },
            // Decorrelate each phase's op stream while keeping the
            // whole sweep a pure function of the master seed.
            seed: opts.base.seed.wrapping_add(u64::from(multiplier)),
            ..opts.base.clone()
        };
        let report = run(addr, &phase)?;
        rows.push(SweepRow { multiplier, offered_ops_per_sec: offered, connections, report });
    }
    Ok(Sweep {
        seed: opts.base.seed,
        duty_secs: opts.base.duty.as_secs_f64(),
        cpus: std::thread::available_parallelism().map_or(1, usize::from),
        pipeline_depth: opts.base.pipeline,
        peak,
        peak_pipelined,
        rows,
    })
}

/// Check the graceful-degradation contract and describe the first
/// violation.
///
/// * **Goodput band**: at the deepest overload, goodput ≥ `band` ×
///   peak. A metastable collapse (retry storms, dead work) shows up
///   here as goodput falling off a cliff as offered load grows.
/// * **Typed rejections**: untyped transport failures stay under 1% of
///   attempts per phase (the shed race — a RST overtaking the BUSY
///   frame on a loopback socket — makes a hard zero flaky; a service
///   *collapsing* into resets blows far past 1%).
/// * **Bounded wall clock**: every phase finished within its duty plus
///   the client-timeout tail — the harness never hung.
pub fn degradation_ok(sweep: &Sweep, band: f64) -> Result<(), String> {
    let peak_rate = sweep.peak_goodput();
    let tail = Duration::from_secs_f64(sweep.duty_secs) + Duration::from_secs(10);
    if sweep.peak.elapsed > tail {
        return Err(format!(
            "calibration overran its duty: {:?} vs {:?} allowed",
            sweep.peak.elapsed, tail
        ));
    }
    for row in &sweep.rows {
        let r = &row.report;
        let untyped_cap = r.attempted / 100;
        if r.untyped_failures() > untyped_cap {
            return Err(format!(
                "at {}x offered load, {} of {} ops failed untyped (cap {}): \
                 overload is leaking transport errors instead of typed rejections",
                row.multiplier,
                r.untyped_failures(),
                r.attempted,
                untyped_cap
            ));
        }
        if r.elapsed > tail {
            return Err(format!(
                "at {}x offered load the phase overran: {:?} vs {:?} allowed (a hang)",
                row.multiplier, r.elapsed, tail
            ));
        }
    }
    let deepest = sweep.rows.last().ok_or_else(|| "empty sweep".to_string())?;
    let ratio = deepest.report.goodput() / peak_rate.max(1e-9);
    if ratio < band {
        return Err(format!(
            "goodput collapsed under overload: {:.1}% of peak at {}x offered load \
             (contract: >= {:.0}%)",
            ratio * 100.0,
            deepest.multiplier,
            band * 100.0
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Outcome;

    fn phase(ok: u64, busy: u64, transport: u64, secs: u64) -> Report {
        let mut r = Report::default();
        for _ in 0..ok {
            r.record(Outcome::Ok, 100);
        }
        for _ in 0..busy {
            r.record(Outcome::Busy, 0);
        }
        for _ in 0..transport {
            r.record(Outcome::Transport, 0);
        }
        r.elapsed = Duration::from_secs(secs);
        r.finalize();
        r
    }

    fn sweep_of(peak: Report, rows: Vec<(u32, Report)>) -> Sweep {
        Sweep {
            seed: 7,
            duty_secs: 2.0,
            cpus: 1,
            pipeline_depth: 1,
            peak,
            peak_pipelined: None,
            rows: rows
                .into_iter()
                .map(|(multiplier, report)| SweepRow {
                    multiplier,
                    offered_ops_per_sec: 0.0,
                    connections: 1,
                    report,
                })
                .collect(),
        }
    }

    #[test]
    fn contract_passes_on_graceful_degradation() {
        // Peak 500 ops/s; at 4x the service sheds typed and keeps 80%.
        let s = sweep_of(
            phase(1000, 0, 0, 2),
            vec![(1, phase(950, 50, 0, 2)), (4, phase(800, 2400, 0, 2))],
        );
        assert_eq!(degradation_ok(&s, 0.7), Ok(()));
    }

    #[test]
    fn contract_fails_on_goodput_collapse() {
        let s = sweep_of(
            phase(1000, 0, 0, 2),
            vec![(4, phase(100, 3000, 0, 2))],
        );
        let err = degradation_ok(&s, 0.7).unwrap_err();
        assert!(err.contains("collapsed"), "{err}");
        assert!(err.contains("4x"), "{err}");
    }

    #[test]
    fn contract_fails_on_untyped_leakage() {
        // 10% of ops failing with resets is a collapse even if goodput
        // stays high.
        let s = sweep_of(phase(1000, 0, 0, 2), vec![(4, phase(900, 0, 100, 2))]);
        let err = degradation_ok(&s, 0.7).unwrap_err();
        assert!(err.contains("untyped"), "{err}");
    }

    #[test]
    fn contract_tolerates_the_rare_shed_race() {
        // Under 1% transport errors is the documented allowance.
        let s = sweep_of(phase(1000, 0, 0, 2), vec![(4, phase(995, 200, 5, 2))]);
        assert_eq!(degradation_ok(&s, 0.7), Ok(()));
    }

    #[test]
    fn contract_fails_on_a_hung_phase() {
        let s = sweep_of(phase(1000, 0, 0, 2), vec![(4, phase(900, 0, 0, 600))]);
        let err = degradation_ok(&s, 0.7).unwrap_err();
        assert!(err.contains("overran"), "{err}");
    }

    #[test]
    fn pipelined_calibration_sets_the_effective_peak() {
        let mut s = sweep_of(phase(1000, 0, 0, 2), vec![(4, phase(1600, 2400, 0, 2))]);
        s.pipeline_depth = 8;
        s.peak_pipelined = Some(phase(2000, 0, 0, 2));
        // The serial calibration stays reported as `peak`, but the
        // effective peak — what the rows were priced against — is the
        // pipelined one.
        assert!((s.peak.goodput() - 500.0).abs() < 1e-9);
        assert!((s.peak_goodput() - 1000.0).abs() < 1e-9);
        assert!((s.pipeline_speedup().expect("speedup") - 2.0).abs() < 1e-9);
        let json = s.to_json();
        assert!(json.contains("\"pipeline_depth\": 8"));
        assert!(json.contains("\"peak_pipelined\""));
        assert!(json.contains("\"pipeline_speedup\": 2.0000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Degradation prices against the effective peak: 800/1000.
        assert_eq!(degradation_ok(&s, 0.7), Ok(()));
    }

    #[test]
    fn serial_sweeps_omit_the_pipelined_block() {
        let s = sweep_of(phase(1000, 0, 0, 2), vec![(4, phase(800, 0, 0, 2))]);
        assert!(s.pipeline_speedup().is_none());
        let json = s.to_json();
        assert!(json.contains("\"pipeline_depth\": 1"));
        assert!(!json.contains("peak_pipelined"));
        assert!(!json.contains("pipeline_speedup"));
    }

    #[test]
    fn json_is_balanced_and_carries_the_degradation_fields() {
        let s = sweep_of(
            phase(1000, 0, 0, 2),
            vec![(1, phase(950, 50, 0, 2)), (4, phase(800, 2400, 1, 2))],
        );
        let json = s.to_json();
        assert!(json.contains("\"experiment\": \"serve_overload\""));
        assert!(json.contains("\"cpus\": 1"));
        assert!(json.contains("\"goodput_vs_peak\""));
        assert!(json.contains("\"expired\""));
        assert!(json.contains("\"transport\""));
        assert!(json.contains("\"multiplier\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Floats render plain: no NaN/inf, no scientific notation.
        for bad in ["NaN", "inf", "e-", "e+"] {
            assert!(!json.contains(bad), "{bad} leaked into {json}");
        }
    }
}
