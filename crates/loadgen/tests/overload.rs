//! The graceful-degradation contract, end to end: a live daemon under
//! a seeded overload sweep must keep its goodput inside the band, turn
//! every excess request into a *typed* rejection, and never hang.
//!
//! Duties here are deliberately short (CI runs this on one core, where
//! the generator and the daemon fight for the same CPU) and the band
//! is the CI band (0.5), looser than the default contract band (0.7)
//! that `hmh loadgen sweep` applies on real hardware.

use std::time::{Duration, Instant};

use hmh_loadgen::{degradation_ok, sweep, LoadOptions, Mix, Pacing, run, SweepOptions};
use hmh_serve::{serve, Client, ServeOptions};
use hmh_store::StoreOptions;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("hmh-loadgen-{tag}-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp store dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small daemon: two workers, a short accept queue so overload sheds
/// quickly instead of buffering seconds of backlog.
fn start(dir: &TempDir) -> hmh_serve::ServerHandle {
    serve(
        self_path(dir),
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            queue_depth: 8,
            store: StoreOptions::no_sleep(),
            ..ServeOptions::default()
        },
    )
    .expect("start daemon")
}

fn self_path(dir: &TempDir) -> &std::path::Path {
    &dir.0
}

#[test]
fn overload_sweep_degrades_gracefully_with_typed_rejections() {
    let dir = TempDir::new("sweep");
    let node = start(&dir);

    let opts = SweepOptions {
        base: LoadOptions {
            seed: 0x0BAD_CAFE,
            connections: 2,
            duty: Duration::from_millis(900),
            keys: 32,
            payload_items: 128,
            // Stamp a real deadline so queued-past-budget requests can
            // come back as typed EXPIRED instead of being done dead.
            budget: Some(Duration::from_millis(500)),
            ..LoadOptions::default()
        },
        multipliers: vec![1, 4],
        max_connections: 8,
    };

    let started = Instant::now();
    let result = sweep(node.addr(), &opts).expect("sweep runs");
    // Never hangs: calibration + 2 phases + preloads, all inside a
    // hard wall-clock ceiling far below any test timeout.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "sweep took {:?}; the harness hung under overload",
        started.elapsed()
    );

    // The peak phase did real work and measured a real rate.
    assert!(result.peak.ok > 0, "calibration made no successful ops");
    assert!(result.peak_goodput() > 0.0);
    assert!(result.cpus >= 1);
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[1].multiplier, 4);
    // 4x offered load really was offered (scheduled above peak).
    assert!(result.rows[1].offered_ops_per_sec > result.peak_goodput() * 3.9);

    // The contract, at the CI band.
    if let Err(why) = degradation_ok(&result, 0.5) {
        panic!("graceful-degradation contract violated: {why}\n{}", result.to_json());
    }

    // Every non-ok op in every phase is accounted for in a typed
    // bucket or the (capped) transport row — nothing vanished.
    for row in &result.rows {
        let r = &row.report;
        assert_eq!(
            r.attempted,
            r.ok + r.typed_rejections() + r.typed_other + r.transport,
            "ops leaked out of the outcome taxonomy at {}x",
            row.multiplier
        );
    }

    // The artifact renders and carries the band evidence.
    let json = result.to_json();
    assert!(json.contains("\"goodput_vs_peak\""));
    assert!(json.contains("\"multiplier\": 4"));

    // The daemon is still healthy after the storm and its HEALTH
    // counters saw the overload: shed and/or expired moved.
    let mut probe = Client::connect(node.addr());
    let health = probe.health().expect("health after the sweep");
    assert!(!health.read_only, "overload must not wedge the daemon read-only");
    drop(probe);

    node.shutdown();
    node.join();
}

#[test]
fn seeded_runs_generate_identical_op_streams() {
    // Same seed, same mix, same keys: the generator's *offered* stream
    // is deterministic, so two closed-loop runs against idle daemons
    // agree on what they attempted (counts differ only by timing; the
    // sequence does not). We verify the observable contract cheaply:
    // both runs succeed, only PUT/CARD ops appear (mix has no list /
    // jaccard weight), and nothing is untyped on an idle server.
    let dir = TempDir::new("seeded");
    let node = start(&dir);
    let opts = LoadOptions {
        seed: 42,
        connections: 1,
        duty: Duration::from_millis(300),
        keys: 8,
        payload_items: 64,
        mix: Mix { put: 1, card: 1, jaccard: 0, list: 0 },
        pacing: Pacing::Closed,
        ..LoadOptions::default()
    };
    let a = run(node.addr(), &opts).expect("first run");
    let b = run(node.addr(), &opts).expect("second run");
    for (tag, r) in [("first", &a), ("second", &b)] {
        assert!(r.ok > 0, "{tag} run made no progress");
        assert_eq!(r.transport, 0, "{tag} run saw transport errors on an idle daemon");
        assert_eq!(r.attempted, r.ok + r.typed_rejections() + r.typed_other + r.transport);
    }
    node.shutdown();
    node.join();
}

#[test]
fn open_loop_pacing_offers_the_scheduled_rate_not_more() {
    // At a scheduled rate far below capacity, an open-loop run issues
    // ~rate × duty ops regardless of how fast the daemon answers —
    // that is what makes it an overload instrument when the rate is
    // far *above* capacity.
    let dir = TempDir::new("paced");
    let node = start(&dir);
    let opts = LoadOptions {
        seed: 9,
        connections: 2,
        duty: Duration::from_millis(1000),
        keys: 8,
        payload_items: 64,
        pacing: Pacing::Open { ops_per_sec: 40.0 },
        ..LoadOptions::default()
    };
    let r = run(node.addr(), &opts).expect("paced run");
    // 40 ops/s × 1s = 40 scheduled; allow generous slack both ways
    // for a loaded CI box (late start trims the schedule's tail).
    assert!(
        (20..=48).contains(&r.attempted),
        "open loop at 40 ops/s for 1s attempted {} ops",
        r.attempted
    );
    assert!(r.ok > 0);
    node.shutdown();
    node.join();
}
