//! Per-peer health tracking: healthy → suspect → down, with capped
//! exponential backoff on attempts against a down peer.
//!
//! The tracker exists to prevent the reconnect storm: a dead peer must
//! not be dialed every round by every replica forever. Failures promote
//! a peer through [`PeerState::Suspect`] (still tried every round — one
//! lost exchange is routine) to [`PeerState::Down`], at which point
//! attempts thin out exponentially in *rounds* (not wall clock, so the
//! schedule is deterministic under test) up to a cap. Any success snaps
//! the peer straight back to healthy — there is no half-recovered state
//! to reason about.

use hmh_serve::{PeerHealth, PeerState};

/// Consecutive failures at which a peer is declared down (before that it
/// is merely suspect).
pub const DOWN_AFTER: u32 = 3;

/// Ceiling on how many rounds a down peer is skipped between attempts.
pub const BACKOFF_CAP_ROUNDS: u64 = 16;

/// Health state machine for one peer address.
#[derive(Debug, Clone)]
pub struct PeerTracker {
    addr: String,
    /// Consecutive failed sync attempts; any success resets to zero.
    failures: u32,
    /// Rounds strictly before this one skip the peer entirely.
    skip_until: u64,
    /// Round of the last successful sync, if any.
    last_success: Option<u64>,
    /// Total digest mismatches repaired against this peer (monotonic).
    mismatches: u64,
    /// Rounds a down peer waits before the next attempt; doubles per
    /// failure once down, capped at [`BACKOFF_CAP_ROUNDS`].
    backoff_cap: u64,
}

impl PeerTracker {
    /// Fresh tracker for `addr`: healthy, never synced.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            failures: 0,
            skip_until: 0,
            last_success: None,
            mismatches: 0,
            backoff_cap: BACKOFF_CAP_ROUNDS,
        }
    }

    /// This tracker with a different backoff ceiling (tests shrink it).
    pub fn with_backoff_cap(mut self, cap: u64) -> Self {
        self.backoff_cap = cap.max(1);
        self
    }

    /// The peer's address as configured.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current state under the healthy → suspect → down ladder.
    pub fn state(&self) -> PeerState {
        match self.failures {
            0 => PeerState::Healthy,
            f if f < DOWN_AFTER => PeerState::Suspect,
            _ => PeerState::Down,
        }
    }

    /// Whether round `round` should attempt this peer. Healthy and
    /// suspect peers are always attempted; down peers only once their
    /// backoff window has passed.
    pub fn should_attempt(&self, round: u64) -> bool {
        round >= self.skip_until
    }

    /// Record a successful sync in `round` that repaired `mismatches`
    /// divergent names. Snaps the peer back to healthy.
    pub fn record_success(&mut self, round: u64, mismatches: u64) {
        self.failures = 0;
        self.skip_until = 0;
        self.last_success = Some(round);
        self.mismatches = self.mismatches.saturating_add(mismatches);
    }

    /// Record a failed sync attempt in `round`. Once the peer is down,
    /// each further failure doubles the number of rounds skipped before
    /// the next attempt, up to the cap — the "never a reconnect storm"
    /// guarantee.
    pub fn record_failure(&mut self, round: u64) {
        self.failures = self.failures.saturating_add(1);
        if self.failures >= DOWN_AFTER {
            let exponent = u64::from((self.failures - DOWN_AFTER).min(32));
            let skip = 1u64.checked_shl(clamp_u32(exponent)).unwrap_or(u64::MAX);
            self.skip_until = round.saturating_add(skip.min(self.backoff_cap)).saturating_add(1);
        }
    }

    /// Wire-facing snapshot for the HEALTH response, as of `round`.
    /// `last_sync_age` is in rounds; `u64::MAX` means "never synced".
    pub fn health(&self, round: u64) -> PeerHealth {
        PeerHealth {
            addr: self.addr.clone(),
            state: self.state(),
            last_sync_age: self.last_success.map_or(u64::MAX, |last| round.saturating_sub(last)),
            mismatches: self.mismatches,
        }
    }
}

fn clamp_u32(n: u64) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_healthy_suspect_down() {
        let mut t = PeerTracker::new("127.0.0.1:1");
        assert_eq!(t.state(), PeerState::Healthy);
        t.record_failure(1);
        assert_eq!(t.state(), PeerState::Suspect);
        t.record_failure(2);
        assert_eq!(t.state(), PeerState::Suspect);
        t.record_failure(3);
        assert_eq!(t.state(), PeerState::Down);
    }

    #[test]
    fn suspect_peers_are_still_attempted_every_round() {
        let mut t = PeerTracker::new("127.0.0.1:1");
        t.record_failure(1);
        t.record_failure(2);
        assert_eq!(t.state(), PeerState::Suspect);
        for round in 3..10 {
            assert!(t.should_attempt(round), "round {round}");
        }
    }

    #[test]
    fn down_peer_backoff_doubles_and_caps() {
        let mut t = PeerTracker::new("127.0.0.1:1").with_backoff_cap(8);
        let mut round = 0u64;
        let mut gaps = Vec::new();
        for _ in 0..8 {
            // Advance to the next permitted attempt and fail it.
            let start = round;
            round += 1;
            while !t.should_attempt(round) {
                round += 1;
            }
            gaps.push(round - start);
            t.record_failure(round);
        }
        // First failures are immediate retries (suspect), then the gap
        // doubles (2, 3, 5 → skip 1, 2, 4 rounds + 1), then caps.
        assert_eq!(t.state(), PeerState::Down);
        let max_gap = *gaps.iter().max().expect("invariant: eight gaps recorded");
        assert!(max_gap <= 8 + 2, "cap must bound the gap, got {gaps:?}");
        let tail = gaps[gaps.len() - 1];
        assert_eq!(tail, max_gap, "once capped, the gap stays capped: {gaps:?}");
    }

    #[test]
    fn success_snaps_back_to_healthy() {
        let mut t = PeerTracker::new("127.0.0.1:1");
        for round in 1..=5 {
            t.record_failure(round);
        }
        assert_eq!(t.state(), PeerState::Down);
        t.record_success(9, 4);
        assert_eq!(t.state(), PeerState::Healthy);
        assert!(t.should_attempt(10));
        let h = t.health(12);
        assert_eq!(h.state, PeerState::Healthy);
        assert_eq!(h.last_sync_age, 3);
        assert_eq!(h.mismatches, 4);
    }

    #[test]
    fn health_reports_never_synced_as_max_age() {
        let t = PeerTracker::new("10.0.0.1:7700");
        let h = t.health(100);
        assert_eq!(h.last_sync_age, u64::MAX);
        assert_eq!(h.addr, "10.0.0.1:7700");
        assert_eq!(h.mismatches, 0);
    }

    #[test]
    fn failure_counter_saturates() {
        let mut t = PeerTracker::new("127.0.0.1:1");
        t.failures = u32::MAX;
        t.record_failure(u64::MAX - 1);
        assert_eq!(t.state(), PeerState::Down);
        assert!(!t.should_attempt(u64::MAX - 1), "backoff still applies at saturation");
    }
}
