//! Merge-based anti-entropy for `hmh-serve` clusters.
//!
//! A HyperMinHash sketch is a state-based CRDT: the paper's union
//! (Algorithm 2) is a lossless per-register max, so it is idempotent,
//! commutative and associative, and replicas that exchange and merge
//! sketches converge to the exact single-node state regardless of
//! delivery order, duplication or loss. This crate is the machinery
//! that makes a cluster of daemons exploit that: each daemon runs an
//! [`AntiEntropy`] engine that periodically exchanges per-name digests
//! with its peers over two protocol ops (DIGEST and SYNC), pulls only
//! the divergent sketches, and folds them in through its own daemon's
//! MERGE path — serialized behind the store lock, validated like any
//! other write.
//!
//! The same engine doubles as the cluster's repair crew for at-rest
//! corruption: names the local daemon's scrub has quarantined are
//! re-fetched from the healthiest peer holding a valid copy and folded
//! back in through loopback MERGE, which releases the fence — see
//! [`engine::repair_from_peers`]. Merge-repair is sound for the same
//! CRDT reason replication is: folding a healthy replica's copy into
//! whatever survived locally can only move the sketch *toward* the
//! cluster-wide union, never lose observed items.
//!
//! Peer liveness is tracked with a healthy → suspect → down ladder
//! ([`PeerTracker`]) whose down-state attempts back off exponentially
//! in rounds, capped — a dead peer costs the cluster a bounded trickle
//! of connection attempts, never a reconnect storm. Per-peer state and
//! round counts are published into the daemon's HEALTH response via
//! [`hmh_serve::ReplicationStatus`].
//!
//! ```no_run
//! use hmh_replica::{AntiEntropy, ReplicaOptions};
//! use hmh_serve::{serve, ServeOptions};
//!
//! let handle = serve("/var/lib/hmh", "127.0.0.1:7700", ServeOptions::default()).unwrap();
//! let peers = vec!["10.0.0.8:7700".parse().unwrap()];
//! let engine = AntiEntropy::spawn(
//!     handle.addr(),
//!     &peers,
//!     handle.replication(),
//!     ReplicaOptions::default(),
//! )
//! .unwrap();
//! // ... serve traffic; the cluster converges in the background ...
//! engine.stop();
//! handle.join();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod peer;

pub use engine::{
    fetch_digests, fetch_quarantine, repair_from_peers, sync_with_peer, AntiEntropy,
    ReplicaOptions, SyncError, MAX_REPAIR_PER_ROUND, MAX_TRACKED_DIGESTS,
};
pub use peer::{PeerTracker, BACKOFF_CAP_ROUNDS, DOWN_AFTER};
