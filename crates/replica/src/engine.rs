//! The anti-entropy loop: periodic digest exchange and divergence pull.
//!
//! Each round, for every attemptable peer, the engine
//!
//! 1. fetches its *own* daemon's digest pages over loopback (the engine
//!    deliberately has no privileged path into the store — going through
//!    the wire serializes it behind the same store lock and validation
//!    as every other writer),
//! 2. fetches the peer's digest pages,
//! 3. diffs them: a name the peer has that we lack, or hold with a
//!    different checksum, is divergent,
//! 4. pulls the divergent sketches via SYNC (chunked, prefix-tolerant)
//!    and folds each into the local daemon with a loopback MERGE.
//!
//! Merge is Algorithm 2's per-register max: idempotent, commutative,
//! associative. Pulling is therefore safe to repeat, safe to interleave
//! with writes, and safe against duplicated delivery — the worst a
//! redundant pull can do is nothing. Both sides pull from each other
//! (each daemon runs its own engine), so pairwise pulls converge the
//! pair; convergence of the cluster follows by transitivity over the
//! peer graph.
//!
//! Hostile peers are contained, not trusted: digest pages must advance
//! strictly (a cursor that loops is a typed error, not an infinite
//! loop), total digests per peer are capped, SYNC replies must be a
//! prefix of the request, and pulled payloads are validated by the local
//! daemon before any write — a garbage sketch dies there as a typed
//! BAD_SKETCH and the peer is marked failed, while the local store keeps
//! serving writes.
//!
//! The engine also runs **read-repair** for the scrub's quarantine: any
//! name the local daemon has fenced as corrupt (its stored bytes failed
//! the checksum scrub with no valid copy surviving locally) is
//! re-fetched from peers in ladder-health order — healthy before
//! suspect before down — and folded back in through the same loopback
//! MERGE path, which validates the payload and releases the fence only
//! on a successful write. A peer that has the name fenced itself
//! answers a typed CORRUPT_QUARANTINED and is skipped; a peer serving
//! garbage dies at the local daemon as BAD_SKETCH and the fence stays;
//! a fully partitioned node finds no donor and *keeps* the fence — a
//! quarantined name is never silently dropped, and never served torn.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hmh_serve::{
    Client, ClientError, ClientOptions, PeerState, ReplicationStatus, RetryBudget,
    MAX_DIGEST_ENTRIES, MAX_SCRUB_PAGE, MAX_SYNC_NAMES,
};
use hmh_store::RetryPolicy;

use crate::peer::PeerTracker;

/// How often the pacing sleep re-checks the stop flag.
const POLL_TICK: Duration = Duration::from_millis(5);

/// Ceiling on digests accepted from one peer in one round. A peer
/// claiming more names than this is lying or misconfigured; either way
/// the round fails typed instead of allocating without bound.
pub const MAX_TRACKED_DIGESTS: usize = 1 << 20;

/// Ceiling on quarantined names read-repair works through in one round.
/// Quarantine beyond the cap is not lost — the names stay fenced and
/// the next round's pass picks up where the page cursor left off from
/// the start of a now-smaller set. Bounding per-round work keeps a
/// mass-corruption event from turning the repair pass into an unbounded
/// stall between pacing sleeps.
pub const MAX_REPAIR_PER_ROUND: usize = 1024;

/// Anti-entropy configuration.
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// Base interval between rounds; actual pacing is jittered up to
    /// +50% via the store's backoff schedule so replicas decorrelate.
    pub interval: Duration,
    /// Seed for the pacing jitter (each daemon should use its own).
    pub jitter_seed: u64,
    /// Connection options for loopback and peer clients.
    pub client: ClientOptions,
    /// Ceiling in rounds on the down-peer attempt backoff.
    pub backoff_cap: u64,
    /// Shared retry budget to draw on at *low priority*: when set, each
    /// peer sync must buy a token via [`RetryBudget::try_spend_low`] —
    /// which only succeeds while the bucket stays at least half full —
    /// so repair traffic yields to foreground load instead of competing
    /// with it. Skipped syncs are recorded as yields on the daemon's
    /// [`ReplicationStatus`] and surface as HEALTH `retry_exhausted`.
    pub retry_budget: Option<Arc<RetryBudget>>,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(1),
            jitter_seed: 0x414e_5445_4e54_5259, // "ANTENTRY"
            client: ClientOptions::default(),
            backoff_cap: crate::peer::BACKOFF_CAP_ROUNDS,
            retry_budget: None,
        }
    }
}

/// Why one peer's sync attempt failed. Every variant marks the peer
/// failed for the round; none of them stops the engine or degrades the
/// local store.
#[derive(Debug)]
pub enum SyncError {
    /// Transport or server-reported failure talking to the peer (or to
    /// the local daemon over loopback).
    Client(ClientError),
    /// The peer violated the replication protocol: a digest cursor that
    /// did not advance, more digests than the cap, a SYNC reply that is
    /// not a prefix of the request, or an empty reply to a non-empty
    /// request.
    Protocol(String),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Client(e) => write!(f, "sync exchange failed: {e}"),
            SyncError::Protocol(detail) => write!(f, "peer violated protocol: {detail}"),
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Client(e) => Some(e),
            SyncError::Protocol(_) => None,
        }
    }
}

impl From<ClientError> for SyncError {
    fn from(e: ClientError) -> Self {
        SyncError::Client(e)
    }
}

/// A running anti-entropy engine. [`AntiEntropy::stop`] (or drop) ends
/// it; the loop notices within one poll tick even mid-sleep.
pub struct AntiEntropy {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl AntiEntropy {
    /// Spawn the engine for the daemon at `local` (loopback address of
    /// our own server) against `peers`, publishing per-round state into
    /// `status` (obtain it from `ServerHandle::replication()`).
    pub fn spawn(
        local: SocketAddr,
        peers: &[SocketAddr],
        status: Arc<ReplicationStatus>,
        opts: ReplicaOptions,
    ) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let peers = peers.to_vec();
        let thread = thread::Builder::new()
            .name("hmh-replica-engine".into())
            .spawn(move || engine_loop(local, &peers, &status, &opts, &stop_flag))?;
        Ok(Self { stop, thread: Some(thread) })
    }

    /// Signal the engine to stop and wait for the in-flight round to
    /// finish.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            // An engine that panicked has nothing left to join for.
            let _ = thread.join();
        }
    }
}

impl Drop for AntiEntropy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

fn engine_loop(
    local: SocketAddr,
    peers: &[SocketAddr],
    status: &ReplicationStatus,
    opts: &ReplicaOptions,
    stop: &AtomicBool,
) {
    let mut trackers: Vec<(SocketAddr, PeerTracker)> = peers
        .iter()
        .map(|&addr| (addr, PeerTracker::new(addr.to_string()).with_backoff_cap(opts.backoff_cap)))
        .collect();
    // Pacing reuses the store's jittered backoff schedule with base =
    // cap = interval: every sleep is interval..1.5×interval, and the
    // jitter stream advances each round so replicas stay decorrelated.
    let mut pacing = RetryPolicy::default().with_jitter_seed(opts.jitter_seed);
    pacing.base_delay = opts.interval;
    pacing.max_delay = opts.interval;

    let mut round = 0u64;
    status.publish(round, trackers.iter().map(|(_, t)| t.health(round)).collect());
    while !stop.load(Ordering::SeqCst) {
        round += 1;
        for (addr, tracker) in &mut trackers {
            if !tracker.should_attempt(round) || stop.load(Ordering::SeqCst) {
                continue;
            }
            // Background repair yields to foreground load: a sync only
            // runs while the shared retry budget is comfortably full.
            // A skipped peer is neither success nor failure — its
            // ladder state is untouched and the next round retries.
            if let Some(budget) = &opts.retry_budget {
                if !budget.try_spend_low() {
                    status.record_yield();
                    continue;
                }
            }
            match sync_with_peer(local, *addr, opts) {
                Ok(mismatches) => {
                    // Re-deposit the toll: a healthy repair loop is
                    // net-zero on the budget, so only *failing* syncs
                    // (or foreground retry pressure) drain it toward
                    // the yield threshold.
                    if let Some(budget) = &opts.retry_budget {
                        budget.record_success();
                    }
                    tracker.record_success(round, mismatches);
                }
                Err(_) => tracker.record_failure(round),
            }
        }
        if !stop.load(Ordering::SeqCst) {
            repair_round(local, &trackers, round, status, opts);
        }
        status.publish(round, trackers.iter().map(|(_, t)| t.health(round)).collect());
        sleep_sliced(pacing.backoff_delay(1), stop);
    }
}

/// One read-repair pass: if the local daemon has quarantined names,
/// try to re-fetch each from peers in ladder-health order and fold it
/// back in via loopback MERGE (which releases the fence). The local
/// status query is free; dialing peers pays the same low-priority
/// budget toll as a sync, so repair yields to foreground load. Failure
/// is non-fatal — the fence persists and the next round retries.
fn repair_round(
    local: SocketAddr,
    trackers: &[(SocketAddr, PeerTracker)],
    round: u64,
    status: &ReplicationStatus,
    opts: &ReplicaOptions,
) {
    let mut local_client = Client::with_options(local, opts.client.clone());
    let Ok(names) = fetch_quarantine(&mut local_client) else {
        // Loopback is down or lying; nothing to repair against.
        return;
    };
    if names.is_empty() {
        return;
    }
    if let Some(budget) = &opts.retry_budget {
        if !budget.try_spend_low() {
            status.record_yield();
            return;
        }
    }
    let order = repair_order(trackers, round);
    let repaired = repair_names(&mut local_client, &order, &names, opts);
    // Re-deposit the toll only when the pass actually released fences:
    // a partitioned node whose donors never answer drains toward the
    // yield threshold instead of dialing dead peers at full cadence.
    if repaired > 0 {
        if let Some(budget) = &opts.retry_budget {
            budget.record_success();
        }
    }
}

/// Peers worth asking for a repair copy this round, healthiest first:
/// healthy before suspect before down (config order breaks ties), and
/// down peers still inside their backoff window are skipped entirely —
/// read-repair must not become the reconnect storm the ladder exists
/// to prevent.
fn repair_order(trackers: &[(SocketAddr, PeerTracker)], round: u64) -> Vec<SocketAddr> {
    let mut ranked: Vec<(u8, usize, SocketAddr)> = trackers
        .iter()
        .enumerate()
        .filter(|(_, (_, tracker))| tracker.should_attempt(round))
        .map(|(i, (addr, tracker))| {
            let rank = match tracker.state() {
                PeerState::Healthy => 0u8,
                PeerState::Suspect => 1,
                PeerState::Down => 2,
            };
            (rank, i, *addr)
        })
        .collect();
    ranked.sort_unstable();
    ranked.into_iter().map(|(_, _, addr)| addr).collect()
}

/// Sleep for `total`, re-checking the stop flag every poll tick so
/// shutdown is never blocked behind a full interval.
fn sleep_sliced(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    while remaining > Duration::ZERO && !stop.load(Ordering::SeqCst) {
        let slice = remaining.min(POLL_TICK);
        thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

/// One full sync against one peer: digest diff, then divergence pull.
/// Returns the number of divergent names repaired. Fresh connections
/// per attempt — cached idle connections would pin a worker on every
/// peer between rounds.
pub fn sync_with_peer(
    local: SocketAddr,
    peer: SocketAddr,
    opts: &ReplicaOptions,
) -> Result<u64, SyncError> {
    let mut local_client = Client::with_options(local, opts.client.clone());
    let mut peer_client = Client::with_options(peer, opts.client.clone());

    let local_digests = fetch_digests(&mut local_client)?;
    let peer_digests = fetch_digests(&mut peer_client)?;

    // Pull-based diff: names the peer holds that we lack or disagree
    // on. Names only *we* hold are not our problem this round — the
    // peer's own engine pulls them from us, which keeps each round's
    // work (and failure domain) strictly one-directional.
    let divergent: Vec<String> = peer_digests
        .iter()
        .filter(|(name, checksum)| local_digests.get(name.as_str()) != Some(checksum))
        .map(|(name, _)| name.clone())
        .collect();
    if divergent.is_empty() {
        return Ok(0);
    }
    pull_divergent(&mut peer_client, &mut local_client, &divergent)
}

/// One full read-repair pass against `peers` (tried in the given order
/// for every name): fetch the local daemon's quarantined names over
/// loopback, then for each name pull an encoded copy from the first
/// peer that serves one and fold it back in via loopback MERGE. Returns
/// the number of names repaired (fences released). Names no peer could
/// supply stay fenced — that is the quarantine keeping its promise, not
/// an error — so the return value may be less than the quarantine size.
///
/// Public for the same reason [`fetch_digests`] is: the CLI's repair
/// verb and the mesh drill want exactly this pass, without duplicating
/// the hardened pagination or the donor-selection loop.
pub fn repair_from_peers(
    local: SocketAddr,
    peers: &[SocketAddr],
    opts: &ReplicaOptions,
) -> Result<u64, SyncError> {
    let mut local_client = Client::with_options(local, opts.client.clone());
    let names = fetch_quarantine(&mut local_client)?;
    Ok(repair_names(&mut local_client, peers, &names, opts))
}

/// Up to [`MAX_REPAIR_PER_ROUND`] quarantined names from one daemon's
/// scrub status, in sorted order. Pagination is hardened exactly like
/// [`fetch_digests`]: names must arrive strictly increasing (the cursor
/// provably advances) and a page over [`MAX_SCRUB_PAGE`] is a protocol
/// violation. The query never triggers a scrub pass — it only reads the
/// fence — so it is safe against a read-only (degraded) daemon.
pub fn fetch_quarantine(client: &mut Client) -> Result<Vec<String>, SyncError> {
    let mut names: Vec<String> = Vec::new();
    let mut cursor = String::new();
    loop {
        let report = client.scrub(false, &cursor)?;
        let page_len = report.names.len();
        if page_len > MAX_SCRUB_PAGE {
            return Err(SyncError::Protocol(format!(
                "quarantine page of {page_len} names exceeds the {MAX_SCRUB_PAGE} cap"
            )));
        }
        for name in report.names {
            if name.as_str() <= cursor.as_str() {
                return Err(SyncError::Protocol(format!(
                    "quarantine cursor did not advance at {name:?}"
                )));
            }
            cursor.clone_from(&name);
            names.push(name);
            if names.len() >= MAX_REPAIR_PER_ROUND {
                return Ok(names);
            }
        }
        if page_len < MAX_SCRUB_PAGE {
            return Ok(names);
        }
    }
}

/// Try to repair each of `names` from the first donor in `peers` that
/// serves a copy; returns how many fences were released. Per-name,
/// per-peer failures are skipped, not propagated: a donor that is
/// unreachable, answers NOT_FOUND (never held the name), or answers
/// CORRUPT_QUARANTINED (fenced it too) simply is not a donor for that
/// name. The MERGE release is trusted only when the local daemon says
/// Ok — a garbage payload dies there as a typed BAD_SKETCH with the
/// fence intact, charged to nobody but the donor we move past.
fn repair_names(
    local: &mut Client,
    peers: &[SocketAddr],
    names: &[String],
    opts: &ReplicaOptions,
) -> u64 {
    if names.is_empty() || peers.is_empty() {
        return 0;
    }
    let mut donors: Vec<Client> =
        peers.iter().map(|&addr| Client::with_options(addr, opts.client.clone())).collect();
    let mut repaired = 0u64;
    for name in names {
        for donor in &mut donors {
            let Ok(payload) = donor.get_raw(name) else {
                continue;
            };
            if payload.is_empty() {
                continue;
            }
            if local.merge_raw(name, &payload).is_ok() {
                repaired = repaired.saturating_add(1);
                break;
            }
        }
    }
    repaired
}

/// All digest pages from one daemon, as a sorted name → checksum map.
/// Hostile pagination is bounded: entries must arrive in strictly
/// increasing name order (so the cursor provably advances) and the
/// total is capped at [`MAX_TRACKED_DIGESTS`].
///
/// Public because the routing tier's rebalancer walks a shard's full
/// digest set the same way anti-entropy does — one hardened pagination
/// loop, shared, instead of a second copy with its own bugs.
pub fn fetch_digests(
    client: &mut Client,
) -> Result<std::collections::BTreeMap<String, u64>, SyncError> {
    let mut digests = std::collections::BTreeMap::new();
    let mut cursor = String::new();
    loop {
        let page = client.digests(&cursor)?;
        let page_len = page.len();
        if page_len > MAX_DIGEST_ENTRIES {
            return Err(SyncError::Protocol(format!(
                "digest page of {page_len} entries exceeds the {MAX_DIGEST_ENTRIES} cap"
            )));
        }
        for entry in page {
            if entry.name.as_str() <= cursor.as_str() {
                return Err(SyncError::Protocol(format!(
                    "digest cursor did not advance at {:?}",
                    entry.name
                )));
            }
            cursor = entry.name.clone();
            digests.insert(entry.name, entry.checksum);
            if digests.len() > MAX_TRACKED_DIGESTS {
                return Err(SyncError::Protocol(format!(
                    "peer claims more than {MAX_TRACKED_DIGESTS} names"
                )));
            }
        }
        if page_len < MAX_DIGEST_ENTRIES {
            return Ok(digests);
        }
    }
}

/// Pull `names` from the peer in protocol-capped chunks and fold each
/// returned sketch into the local daemon. The peer answers the longest
/// prefix of each chunk that fits its frame budget; unanswered names
/// are simply re-requested. An empty payload means the name vanished on
/// the peer between digest and pull — skipped, the next round's digest
/// won't list it.
fn pull_divergent(
    peer: &mut Client,
    local: &mut Client,
    names: &[String],
) -> Result<u64, SyncError> {
    let mut merged = 0u64;
    let mut next = 0usize;
    while next < names.len() {
        let chunk = &names[next..(next + MAX_SYNC_NAMES).min(names.len())];
        let reply = peer.sync(chunk)?;
        if reply.is_empty() {
            // A peer refusing to answer anything would spin this loop
            // forever; make it the peer's failure instead.
            return Err(SyncError::Protocol("empty SYNC reply to a non-empty request".into()));
        }
        if reply.len() > chunk.len() {
            return Err(SyncError::Protocol(format!(
                "SYNC reply has {} entries for a {}-name request",
                reply.len(),
                chunk.len()
            )));
        }
        for (entry, requested) in reply.iter().zip(chunk) {
            if &entry.name != requested {
                return Err(SyncError::Protocol(format!(
                    "SYNC reply entry {:?} is not the requested {requested:?}",
                    entry.name
                )));
            }
            if entry.payload.is_empty() {
                continue;
            }
            // The local daemon validates the payload before writing; a
            // hostile sketch dies there as a typed BAD_SKETCH.
            local.merge_raw(&entry.name, &entry.payload)?;
            merged = merged.saturating_add(1);
        }
        next += reply.len();
    }
    Ok(merged)
}
