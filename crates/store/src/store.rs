//! The crash-safe sketch store.
//!
//! On disk a store is a directory with three files:
//!
//! * `snapshot.hmr` — compacted state, replaced only by atomic
//!   write-temp + fsync + rename;
//! * `wal.hmr` — append-only log of puts/tombstones since the snapshot;
//! * `quarantine.bin` — bytes salvage could not parse, kept for forensics.
//!
//! Every open runs the salvage scan ([`crate::log::salvage_scan`]) over
//! snapshot then WAL, replays intact records last-wins, and reports what
//! it found. With [`StoreOptions::auto_heal`] (the default) a dirty open
//! immediately compacts, so corruption never survives a reopen.
//!
//! Durability discipline for `put`/`remove`: truncate the WAL back to
//! the last known-good length (cutting any torn bytes from a previously
//! failed append), append the record, fsync — all under bounded retry
//! for transient errors. A record is acknowledged only after its fsync
//! succeeds, so an acknowledged record survives any later crash.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use hmh_core::format::{self, FormatError};
use hmh_core::HyperMinHash;

use crate::backend::{atomic_write, Backend, FileBackend};
use crate::lock::{LockError, StoreLock};
use crate::log::{
    encode_record, salvage_scan, scan_step, CorruptSpan, Record, RecordKind, RecoveryReport,
    ScanStep, DIGEST_SEED, MAX_NAME_LEN,
};
use crate::retry::RetryPolicy;
use hmh_hash::xxhash::xxh64;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.hmr";
/// Write-ahead log file name.
pub const WAL_FILE: &str = "wal.hmr";
/// Quarantine dump file name.
pub const QUARANTINE_FILE: &str = "quarantine.bin";
/// Quarantined-name fence file: the names whose records were found
/// corrupt with no surviving valid copy. Persisted so a crash between
/// detection and repair never turns the fence into silent loss of the
/// name — the next open re-fences anything still unrepaired.
pub const QUARANTINE_NAMES_FILE: &str = "quarantine.names";

/// Default scrub slice: how many committed bytes one paced scrub step
/// re-verifies before releasing the store lock.
pub const SCRUB_SLICE_BYTES: usize = 256 * 1024;

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Retry schedule for transient I/O errors.
    pub retry: RetryPolicy,
    /// Compact immediately when an open finds corruption (default true).
    pub auto_heal: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self { retry: RetryPolicy::default(), auto_heal: true }
    }
}

impl StoreOptions {
    /// Options suitable for tests: no retry sleeps.
    pub fn no_sleep() -> Self {
        Self { retry: RetryPolicy::no_sleep(), auto_heal: true }
    }
}

/// Store failures.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed after exhausting retries.
    Io(io::Error),
    /// A payload was not a valid `HMH1` sketch.
    Format(FormatError),
    /// A sketch name was empty or too long.
    InvalidName(String),
    /// Another process holds the store's lock file.
    Locked(LockError),
    /// The name's on-disk record failed its checksum and no valid copy
    /// survives; reads are fenced until a validated write repairs it.
    CorruptQuarantined(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(e) => write!(f, "invalid sketch payload: {e}"),
            StoreError::InvalidName(name) => {
                write!(f, "invalid sketch name {name:?}: must be 1..={MAX_NAME_LEN} bytes")
            }
            StoreError::Locked(e) => write!(f, "{e}"),
            StoreError::CorruptQuarantined(name) => write!(
                f,
                "sketch {name:?} is quarantined: its record failed the checksum scrub and \
                 no valid copy survives; a validated write (repair) releases it"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Format(e) => Some(e),
            StoreError::InvalidName(_) => None,
            StoreError::Locked(e) => Some(e),
            StoreError::CorruptQuarantined(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

/// Cumulative scrub counters (process lifetime, not persisted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Completed full passes over snapshot + WAL.
    pub rounds: u64,
    /// Records whose checksums were re-verified (cumulative).
    pub records: u64,
    /// Corrupt spans found (at open or by scrub).
    pub corrupt_found: u64,
    /// Corrupt records repaired: rewritten from a surviving valid copy,
    /// or released from quarantine by a validated write.
    pub repaired: u64,
}

/// One corruption finding surfaced by a scrub step, tagged with the
/// file it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// `snapshot.hmr` or `wal.hmr`.
    pub file: &'static str,
    /// The corrupt record's location and checksum mismatch.
    pub span: CorruptSpan,
}

/// Result of one bounded scrub step.
#[derive(Debug, Clone, Default)]
pub struct ScrubSlice {
    /// Records verified by this step.
    pub records: u64,
    /// Corruption found by this step.
    pub findings: Vec<ScrubFinding>,
    /// True when this step finished a full pass (the cursor wrapped).
    pub completed_round: bool,
}

/// Current on-disk health with per-record corruption detail
/// ([`SketchStore::fsck_detail`]); read-only, like `fsck`.
#[derive(Debug, Clone, Default)]
pub struct FsckDetail {
    /// The summary `fsck` has always reported.
    pub report: RecoveryReport,
    /// Per-record corruption spans, tagged with their file.
    pub spans: Vec<ScrubFinding>,
}

/// Where the scrub cursor sits: which file, and the byte offset of the
/// next unverified record boundary.
#[derive(Debug, Clone, Copy)]
enum ScrubFile {
    Snapshot,
    Wal,
}

/// A crash-safe, named collection of HyperMinHash sketches.
#[derive(Debug)]
pub struct SketchStore<B: Backend> {
    backend: B,
    dir: PathBuf,
    entries: BTreeMap<String, Vec<u8>>,
    /// Known-good WAL length: bytes up to and including the last record
    /// this process successfully fsynced (or salvaged at open).
    wal_len: u64,
    report: RecoveryReport,
    options: StoreOptions,
    /// Names fenced by quarantine: their on-disk record failed its
    /// checksum and no valid copy survives. Reads return
    /// [`StoreError::CorruptQuarantined`]; a validated write releases.
    quarantine: BTreeSet<String>,
    /// Incremental scrub position.
    scrub_file: ScrubFile,
    scrub_offset: usize,
    scrub_stats: ScrubStats,
    last_scrub_completed: Option<Instant>,
    /// Single-writer lock, held for real-filesystem stores ([`Self::open`]
    /// / [`Self::open_opts`]); released when the store drops. In-memory
    /// and fault-injected opens via [`Self::open_with`] skip it — they
    /// are same-process by construction.
    lock: Option<StoreLock>,
}

impl SketchStore<FileBackend> {
    /// Open (creating if absent) a store directory on the real
    /// filesystem with default options. Acquires the directory's
    /// single-writer lock; fails with [`StoreError::Locked`] while
    /// another live process holds it.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_opts(dir, StoreOptions::default())
    }

    /// [`Self::open`] with explicit options.
    pub fn open_opts(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        FileBackend.ensure_dir(&dir)?;
        let lock = StoreLock::acquire(&dir).map_err(StoreError::Locked)?;
        let mut store = Self::open_with(FileBackend, dir, options)?;
        store.lock = Some(lock);
        Ok(store)
    }
}

impl<B: Backend> SketchStore<B> {
    /// Open a store over an arbitrary backend.
    ///
    /// Never fails on *corrupt* data — salvage recovers what it can and
    /// the [`recovery_report`](Self::recovery_report) says what happened.
    /// Only real I/O failures (after retries) surface as errors.
    pub fn open_with(
        mut backend: B,
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        backend.ensure_dir(&dir)?;

        let mut entries = BTreeMap::new();
        let mut report = RecoveryReport::default();
        let mut quarantined_bytes: Vec<u8> = Vec::new();
        let mut corrupt_names: BTreeSet<String> = BTreeSet::new();
        let mut corrupt_found = 0u64;

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let mut wal_len = 0u64;
        for (path, is_wal) in [(&snapshot_path, false), (&wal_path, true)] {
            let bytes = backend.read(path)?.unwrap_or_default();
            let salvage = salvage_scan(&bytes);
            for record in salvage.records {
                apply(&mut entries, record);
            }
            for &(start, end) in &salvage.quarantined_ranges {
                quarantined_bytes.extend_from_slice(&bytes[start..end]);
            }
            corrupt_found += salvage.corrupt_spans.len() as u64;
            corrupt_names.extend(salvage.corrupt_spans.into_iter().filter_map(|s| s.name));
            report.absorb(&salvage.report);
            if is_wal {
                wal_len = bytes.len() as u64;
            }
        }

        // Fence every name whose record rotted with no surviving valid
        // copy — the salvage dropped its bytes, but the *name* must not
        // vanish silently: GET answers typed, and read-repair knows
        // what to fetch. A name with a surviving valid record (an older
        // snapshot version, say) is not fenced; anti-entropy catches it
        // up like any stale replica. Names fenced by a previous process
        // life stay fenced until a validated write repairs them.
        let mut quarantine: BTreeSet<String> =
            corrupt_names.into_iter().filter(|name| !entries.contains_key(name)).collect();
        let fence_file = backend.read(&dir.join(QUARANTINE_NAMES_FILE))?;
        let had_fence_file = fence_file.is_some();
        if let Some(bytes) = fence_file {
            // The fence file is itself salvage-scanned: a rotted fence
            // file degrades to fewer fences, never to a crash.
            quarantine.extend(
                salvage_scan(&bytes)
                    .records
                    .into_iter()
                    .filter(|r| !entries.contains_key(&r.name))
                    .map(|r| r.name),
            );
        }

        let mut store = Self {
            backend,
            dir,
            entries,
            wal_len,
            report: report.clone(),
            options,
            quarantine,
            scrub_file: ScrubFile::Snapshot,
            scrub_offset: 0,
            scrub_stats: ScrubStats { corrupt_found, ..ScrubStats::default() },
            last_scrub_completed: None,
            lock: None,
        };
        if !store.quarantine.is_empty() || had_fence_file {
            store.persist_quarantine();
        }

        if !report.is_clean() {
            // Keep the unparseable bytes for forensics (best effort —
            // the quarantine file is not load-bearing).
            if !quarantined_bytes.is_empty() {
                let qpath = store.dir.join(QUARANTINE_FILE);
                let _ = store.backend.append(&qpath, &quarantined_bytes);
            }
            if store.options.auto_heal {
                // Rewrite clean state now so the corruption cannot
                // resurface. Best effort: if the heal itself fails, the
                // in-memory state is still correct and a later compact
                // can finish the job.
                let _ = store.compact();
            }
        }
        Ok(store)
    }

    /// What the salvage scan found when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The storage backend (the fault harness reads its counters).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Store an encoded `HMH1` payload under `name`, durably.
    ///
    /// The payload is validated before anything touches disk, so the
    /// store never persists bytes it could not decode back.
    pub fn put_encoded(&mut self, name: &str, payload: &[u8]) -> Result<(), StoreError> {
        format::decode(payload)?;
        self.append_record(name, RecordKind::Put, payload)?;
        self.entries.insert(name.to_string(), payload.to_vec());
        self.release_quarantine(name);
        Ok(())
    }

    /// Store a sketch under `name`, durably.
    pub fn put(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), StoreError> {
        let payload = format::encode(sketch);
        self.append_record(name, RecordKind::Put, &payload)?;
        self.entries.insert(name.to_string(), payload);
        self.release_quarantine(name);
        Ok(())
    }

    /// Encoded payload stored under `name`, if any. Quarantined names
    /// hold no payload; callers that must distinguish "absent" from
    /// "fenced" check [`Self::is_quarantined`].
    pub fn get_encoded(&self, name: &str) -> Option<&[u8]> {
        self.entries.get(name).map(Vec::as_slice)
    }

    /// Decoded sketch stored under `name`, if any. A quarantined name is
    /// a typed error, never `None`: the name exists but its bytes are
    /// fenced until repaired.
    pub fn get(&self, name: &str) -> Result<Option<HyperMinHash>, StoreError> {
        match self.entries.get(name) {
            Some(payload) => Ok(Some(format::decode(payload)?)),
            None if self.quarantine.contains(name) => {
                Err(StoreError::CorruptQuarantined(name.to_string()))
            }
            None => Ok(None),
        }
    }

    /// Remove `name`, durably (a tombstone record). `Ok(false)` when the
    /// name was not present (no record written). Removing a quarantined
    /// name releases its fence — an explicit operator decision to give
    /// up on the data, counted as neither repair nor loss.
    pub fn remove(&mut self, name: &str) -> Result<bool, StoreError> {
        if self.quarantine.contains(name) {
            self.append_record(name, RecordKind::Tombstone, &[])?;
            self.quarantine.remove(name);
            self.persist_quarantine();
            return Ok(true);
        }
        if !self.entries.contains_key(name) {
            return Ok(false);
        }
        self.append_record(name, RecordKind::Tombstone, &[])?;
        self.entries.remove(name);
        Ok(true)
    }

    /// True when `name` is fenced by quarantine.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.quarantine.contains(name)
    }

    /// Number of quarantined names.
    pub fn quarantined_count(&self) -> usize {
        self.quarantine.len()
    }

    /// One page of quarantined names: up to `limit` names strictly after
    /// `after` in sorted order — the same cursor contract as
    /// [`Self::digest_page`], so paged retrieval over the wire
    /// terminates for the same reason.
    pub fn quarantined_page(&self, after: &str, limit: usize) -> Vec<String> {
        use std::ops::Bound;
        self.quarantine
            .range::<str, _>((Bound::Excluded(after), Bound::Unbounded))
            .take(limit)
            .cloned()
            .collect()
    }

    /// Release `name` from quarantine after a validated write landed
    /// (the only exit besides an explicit [`Self::remove`]).
    fn release_quarantine(&mut self, name: &str) {
        if self.quarantine.remove(name) {
            self.scrub_stats.repaired += 1;
            // Best effort: if the fence-file rewrite fails the name is
            // merely re-fenced at the next open until a write repairs
            // it again — safe in the useless direction, never unsafe.
            self.persist_quarantine();
        }
    }

    /// Rewrite the fence file from the current quarantine set (atomic
    /// replace; best effort — see callers for why that is safe).
    fn persist_quarantine(&mut self) {
        let mut buf = Vec::new();
        for name in &self.quarantine {
            buf.extend(encode_record(name, RecordKind::Put, &[]));
        }
        let path = self.dir.join(QUARANTINE_NAMES_FILE);
        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        let _ = retry.run(|| atomic_write(backend, &path, &buf));
    }

    /// All stored names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// One page of stored names: up to `limit` names strictly after
    /// `after` in sorted order (empty `after` starts from the
    /// beginning). The listing analogue of [`Self::digest_page`] — the
    /// cursor contract is identical, so paginated LIST over the wire
    /// inherits the same termination proof (each page advances the
    /// cursor strictly, names are finite).
    pub fn names_page(&self, after: &str, limit: usize) -> Vec<String> {
        use std::ops::Bound;
        self.entries
            .range::<str, _>((Bound::Excluded(after), Bound::Unbounded))
            .take(limit)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// One page of replication digests: up to `limit` `(name, checksum)`
    /// pairs for names strictly after `after` in sorted order (empty
    /// `after` starts from the beginning). The checksum is xxHash64 of
    /// the stored payload under [`crate::log::DIGEST_SEED`], so two
    /// replicas agree on a name exactly when they hold byte-identical
    /// sketches — the property anti-entropy needs, since `format::encode`
    /// is canonical.
    pub fn digest_page(&self, after: &str, limit: usize) -> Vec<(String, u64)> {
        use std::ops::Bound;
        self.entries
            .range::<str, _>((Bound::Excluded(after), Bound::Unbounded))
            .take(limit)
            .map(|(name, payload)| (name.clone(), xxh64(payload, DIGEST_SEED)))
            .collect()
    }

    /// Number of stored sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no sketches are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rewrite the snapshot from current state (atomic replace), then
    /// reset the WAL. Shrinks the store to one record per live name and
    /// drops any corrupt bytes still sitting in the old files.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let mut snapshot = Vec::new();
        for (name, payload) in &self.entries {
            snapshot.extend(encode_record(name, RecordKind::Put, payload));
        }
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        let wal_path = self.dir.join(WAL_FILE);

        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        retry.run(|| atomic_write(backend, &snapshot_path, &snapshot))?;

        // The snapshot now holds everything; the WAL can go. A crash
        // between rename and truncate only leaves duplicate records,
        // which last-wins replay makes harmless.
        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        retry.run(|| {
            backend.truncate(&wal_path, 0)?;
            backend.fsync(&wal_path)
        })?;
        // Note: `self.report` deliberately keeps what the *open* found —
        // healing the files does not rewrite history; `fsck` reports
        // current on-disk health.
        self.wal_len = 0;
        // Both files were just rewritten; the scrub cursor's offsets no
        // longer name record boundaries. Restart the pass.
        self.scrub_file = ScrubFile::Snapshot;
        self.scrub_offset = 0;
        Ok(())
    }

    /// Re-scan both files from disk and report their current health
    /// without modifying anything.
    pub fn fsck(&mut self) -> Result<RecoveryReport, StoreError> {
        Ok(self.fsck_detail()?.report)
    }

    /// [`Self::fsck`] with per-record corruption spans (offset, length,
    /// checksum expected/actual, best-effort name), tagged by file.
    /// Read-only, like `fsck`.
    pub fn fsck_detail(&mut self) -> Result<FsckDetail, StoreError> {
        let mut detail = FsckDetail::default();
        for file in [SNAPSHOT_FILE, WAL_FILE] {
            let bytes = self.backend.read(&self.dir.join(file))?.unwrap_or_default();
            let salvage = salvage_scan(&bytes);
            detail.report.absorb(&salvage.report);
            detail
                .spans
                .extend(salvage.corrupt_spans.into_iter().map(|span| ScrubFinding { file, span }));
        }
        Ok(detail)
    }

    /// Cumulative scrub counters.
    pub fn scrub_stats(&self) -> ScrubStats {
        self.scrub_stats
    }

    /// Milliseconds since the last completed scrub pass (`None` until a
    /// first pass completes).
    pub fn last_scrub_age_ms(&self) -> Option<u64> {
        self.last_scrub_completed
            .map(|at| u64::try_from(at.elapsed().as_millis()).unwrap_or(u64::MAX))
    }

    /// Re-verify one bounded slice of committed on-disk records — the
    /// online scrub's unit of work, sized so callers can hold the store
    /// lock across a step without stalling traffic, and pace steps with
    /// the same backoff machinery as anti-entropy.
    ///
    /// Every corrupt span found is handled before the step returns:
    ///
    /// * a record shadowed by a valid in-memory copy (the common live
    ///   bit-rot case — memory was validated at load/put) is repaired by
    ///   compacting, which rewrites both files from memory;
    /// * a record with no surviving copy has its name quarantined
    ///   (fenced reads, persisted, released only by a validated write)
    ///   and its bytes dropped at the same compact — so a later pass
    ///   finds a clean disk plus an honest fence, never the same rot
    ///   twice;
    /// * an unattributable span (header too damaged to name) is covered
    ///   by the compact alone: memory holds every live name's bytes.
    pub fn scrub_slice(&mut self, max_bytes: usize) -> Result<ScrubSlice, StoreError> {
        let mut out = ScrubSlice::default();
        let (file, path) = match self.scrub_file {
            ScrubFile::Snapshot => (SNAPSHOT_FILE, self.dir.join(SNAPSHOT_FILE)),
            ScrubFile::Wal => (WAL_FILE, self.dir.join(WAL_FILE)),
        };
        let bytes = self.backend.read(&path)?.unwrap_or_default();
        // Only bytes we ever acknowledged are scrubbed: the WAL past
        // `wal_len` may legitimately hold a torn append that salvage
        // (not scrub) owns.
        let limit = match self.scrub_file {
            ScrubFile::Snapshot => bytes.len(),
            ScrubFile::Wal => (self.wal_len as usize).min(bytes.len()),
        };
        let mut pos = self.scrub_offset.min(limit);
        let slice_end = pos.saturating_add(max_bytes.max(1)).min(limit);
        while pos < slice_end {
            match scan_step(&bytes, pos, limit) {
                ScanStep::Record { next, .. } => {
                    out.records += 1;
                    pos = next;
                }
                ScanStep::Corrupt { spans, next } => {
                    out.findings.extend(spans.into_iter().map(|span| ScrubFinding { file, span }));
                    pos = next;
                }
                ScanStep::End => break,
            }
        }
        self.scrub_offset = pos;
        self.scrub_stats.records += out.records;

        if pos >= limit {
            match self.scrub_file {
                ScrubFile::Snapshot => {
                    self.scrub_file = ScrubFile::Wal;
                    self.scrub_offset = 0;
                }
                ScrubFile::Wal => {
                    self.scrub_file = ScrubFile::Snapshot;
                    self.scrub_offset = 0;
                    self.scrub_stats.rounds += 1;
                    self.last_scrub_completed = Some(Instant::now());
                    out.completed_round = true;
                }
            }
        }

        if !out.findings.is_empty() {
            self.scrub_stats.corrupt_found += out.findings.len() as u64;
            let mut newly_fenced = 0u64;
            for finding in &out.findings {
                if let Some(name) = &finding.span.name {
                    if !self.entries.contains_key(name) && self.quarantine.insert(name.clone()) {
                        newly_fenced += 1;
                    }
                }
            }
            if newly_fenced > 0 {
                self.persist_quarantine();
            }
            // One compact handles every case: records with surviving
            // memory copies are rewritten (repaired), and the corrupt
            // bytes — quarantined or not — leave the disk, so the next
            // pass starts clean. Fenced names are *not* repaired by
            // this (they have no bytes to rewrite); they stay fenced.
            self.compact()?;
            self.scrub_stats.repaired +=
                (out.findings.len() as u64).saturating_sub(newly_fenced);
        }
        Ok(out)
    }

    /// Run scrub steps until a full pass completes, accumulating what
    /// they found — the offline `hmh store scrub` entry point.
    ///
    /// The loop is bounded: each step either advances the cursor by at
    /// least one byte or completes the pass, and a step that finds
    /// corruption compacts (shrinking the files), so the iteration
    /// count is capped by the file sizes; the explicit ceiling below is
    /// a belt-and-braces guard against a backend that mutates under us.
    pub fn scrub_full(&mut self, slice_bytes: usize) -> Result<ScrubSlice, StoreError> {
        let mut total = ScrubSlice::default();
        let span_bytes: usize = self
            .backend
            .read(&self.dir.join(SNAPSHOT_FILE))?
            .map(|b| b.len())
            .unwrap_or(0)
            .saturating_add(self.wal_len as usize);
        let bound = span_bytes / slice_bytes.max(1) + 8;
        for _ in 0..bound {
            let slice = self.scrub_slice(slice_bytes)?;
            total.records += slice.records;
            total.findings.extend(slice.findings);
            if slice.completed_round {
                total.completed_round = true;
                break;
            }
        }
        Ok(total)
    }

    /// Append one record to the WAL with full durability discipline.
    fn append_record(
        &mut self,
        name: &str,
        kind: RecordKind,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        let record = encode_record(name, kind, payload);
        let wal_path = self.dir.join(WAL_FILE);
        let wal_len = self.wal_len;
        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        retry.run(|| {
            // Cut torn bytes a previously failed append may have left,
            // so the new record lands at a known-good offset.
            backend.truncate(&wal_path, wal_len)?;
            backend.append(&wal_path, &record)?;
            backend.fsync(&wal_path)
        })?;
        self.wal_len += record.len() as u64;
        Ok(())
    }
}

fn apply(entries: &mut BTreeMap<String, Vec<u8>>, record: Record) {
    match record.kind {
        RecordKind::Put => {
            entries.insert(record.name, record.payload);
        }
        RecordKind::Tombstone => {
            entries.remove(&record.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::MemBackend;
    use hmh_core::{HmhParams, HyperMinHash};
    use std::path::Path;

    fn sketch(items: std::ops::Range<u64>) -> HyperMinHash {
        let params = HmhParams::new(4, 6, 4).unwrap();
        HyperMinHash::from_items(params, items)
    }

    fn mem_store(mem: &MemBackend) -> SketchStore<MemBackend> {
        SketchStore::open_with(mem.clone(), "/store", StoreOptions::no_sleep()).unwrap()
    }

    #[test]
    fn put_get_remove_round_trip() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        let a = sketch(0..100);
        s.put("a", &a).unwrap();
        assert_eq!(s.get("a").unwrap().unwrap(), a);
        assert_eq!(s.len(), 1);
        assert!(s.remove("a").unwrap());
        assert!(!s.remove("a").unwrap());
        assert!(s.get("a").unwrap().is_none());
    }

    #[test]
    fn state_survives_reopen() {
        let mem = MemBackend::new();
        let (a, b) = (sketch(0..50), sketch(25..75));
        {
            let mut s = mem_store(&mem);
            s.put("a", &a).unwrap();
            s.put("b", &b).unwrap();
            s.put("a", &b).unwrap(); // overwrite: last wins
            s.remove("b").unwrap();
        }
        let s = mem_store(&mem);
        assert!(s.recovery_report().is_clean());
        assert_eq!(s.get("a").unwrap().unwrap(), b);
        assert!(s.get("b").unwrap().is_none());
        assert_eq!(s.names().collect::<Vec<_>>(), ["a"]);
    }

    #[test]
    fn compact_shrinks_and_preserves() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        for i in 0..10u64 {
            s.put("hot", &sketch(0..10 * (i + 1))).unwrap();
        }
        let wal = Path::new("/store").join(WAL_FILE);
        let before = mem.len(&wal).unwrap();
        s.compact().unwrap();
        assert_eq!(mem.len(&wal), Some(0));
        assert!(mem.len(&Path::new("/store").join(SNAPSHOT_FILE)).unwrap() < before);
        let expect = sketch(0..100);
        assert_eq!(s.get("hot").unwrap().unwrap(), expect);
        let reopened = mem_store(&mem);
        assert_eq!(reopened.get("hot").unwrap().unwrap(), expect);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_torn_record() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        s.put("keep", &sketch(0..30)).unwrap();
        s.put("casualty", &sketch(0..40)).unwrap();
        // Crash mid-append of the second record: cut 3 bytes.
        let wal = Path::new("/store").join(WAL_FILE);
        let len = mem.len(&wal).unwrap();
        assert!(mem.truncate_at(&wal, len - 3));
        let s2 = mem_store(&mem);
        assert!(s2.recovery_report().truncated_tail);
        assert_eq!(s2.get("keep").unwrap().unwrap(), sketch(0..30));
        assert!(s2.get("casualty").unwrap().is_none());
        // Auto-heal compacted: a further reopen is clean.
        let s3 = mem_store(&mem);
        assert!(s3.recovery_report().is_clean());
    }

    #[test]
    fn bit_flip_is_quarantined_and_healed() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        s.put("a", &sketch(0..30)).unwrap();
        s.put("b", &sketch(0..40)).unwrap();
        s.put("c", &sketch(0..50)).unwrap();
        s.compact().unwrap();
        let snap = Path::new("/store").join(SNAPSHOT_FILE);
        // Corrupt the middle record's payload area.
        let len = mem.len(&snap).unwrap();
        assert!(mem.flip_bit(&snap, len / 2, 3));
        let s2 = mem_store(&mem);
        assert_eq!(s2.recovery_report().quarantined, 1);
        assert!(s2.len() < 3, "the hit record is gone, not silently wrong");
        // Quarantined bytes were kept for forensics.
        assert!(mem.len(&Path::new("/store").join(QUARANTINE_FILE)).unwrap_or(0) > 0);
        // And the store healed itself.
        let s3 = mem_store(&mem);
        assert!(s3.recovery_report().is_clean());
        assert_eq!(s3.len(), s2.len());
    }

    #[test]
    fn invalid_names_and_payloads_rejected_before_disk() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        assert!(matches!(s.put("", &sketch(0..5)), Err(StoreError::InvalidName(_))));
        assert!(matches!(s.put_encoded("x", b"not a sketch"), Err(StoreError::Format(_))));
        assert_eq!(mem.len(&Path::new("/store").join(WAL_FILE)), None, "nothing written");
    }

    #[test]
    fn file_store_is_single_writer_both_orders() {
        let dir = std::env::temp_dir()
            .join(format!("hmh-store-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Order 1: first opener holds, second fails fast with Locked.
        let first = SketchStore::open(&dir).unwrap();
        let err = SketchStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Locked(_)), "{err:?}");
        assert!(err.to_string().contains("locked"), "{err}");
        drop(first);

        // Order 2: the released lock admits the other side; the original
        // opener now fails in turn.
        let second = SketchStore::open(&dir).unwrap();
        assert!(matches!(SketchStore::open(&dir), Err(StoreError::Locked(_))));
        drop(second);

        // Mem-backed opens never lock: two live handles are fine.
        let mem = MemBackend::new();
        let a = mem_store(&mem);
        let b = mem_store(&mem);
        drop((a, b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = StoreError::Io(io::Error::other("disk on fire"));
        assert!(e.source().is_some());
        let e = StoreError::InvalidName(String::new());
        assert!(e.source().is_none());
    }

    #[test]
    fn fsck_reports_without_modifying() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        s.put("a", &sketch(0..30)).unwrap();
        assert!(s.fsck().unwrap().is_clean());
        let wal = Path::new("/store").join(WAL_FILE);
        let len = mem.len(&wal).unwrap();
        let before = mem.raw(&wal).unwrap();
        assert!(mem.truncate_at(&wal, len - 1));
        let report = s.fsck().unwrap();
        assert!(report.truncated_tail);
        assert_eq!(mem.raw(&wal).unwrap(), before[..len - 1], "fsck is read-only");
    }
}
