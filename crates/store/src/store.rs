//! The crash-safe sketch store.
//!
//! On disk a store is a directory with three files:
//!
//! * `snapshot.hmr` — compacted state, replaced only by atomic
//!   write-temp + fsync + rename;
//! * `wal.hmr` — append-only log of puts/tombstones since the snapshot;
//! * `quarantine.bin` — bytes salvage could not parse, kept for forensics.
//!
//! Every open runs the salvage scan ([`crate::log::salvage_scan`]) over
//! snapshot then WAL, replays intact records last-wins, and reports what
//! it found. With [`StoreOptions::auto_heal`] (the default) a dirty open
//! immediately compacts, so corruption never survives a reopen.
//!
//! Durability discipline for `put`/`remove`: truncate the WAL back to
//! the last known-good length (cutting any torn bytes from a previously
//! failed append), append the record, fsync — all under bounded retry
//! for transient errors. A record is acknowledged only after its fsync
//! succeeds, so an acknowledged record survives any later crash.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;

use hmh_core::format::{self, FormatError};
use hmh_core::HyperMinHash;

use crate::backend::{atomic_write, Backend, FileBackend};
use crate::lock::{LockError, StoreLock};
use crate::log::{
    encode_record, salvage_scan, Record, RecordKind, RecoveryReport, DIGEST_SEED, MAX_NAME_LEN,
};
use crate::retry::RetryPolicy;
use hmh_hash::xxhash::xxh64;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.hmr";
/// Write-ahead log file name.
pub const WAL_FILE: &str = "wal.hmr";
/// Quarantine dump file name.
pub const QUARANTINE_FILE: &str = "quarantine.bin";

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Retry schedule for transient I/O errors.
    pub retry: RetryPolicy,
    /// Compact immediately when an open finds corruption (default true).
    pub auto_heal: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self { retry: RetryPolicy::default(), auto_heal: true }
    }
}

impl StoreOptions {
    /// Options suitable for tests: no retry sleeps.
    pub fn no_sleep() -> Self {
        Self { retry: RetryPolicy::no_sleep(), auto_heal: true }
    }
}

/// Store failures.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed after exhausting retries.
    Io(io::Error),
    /// A payload was not a valid `HMH1` sketch.
    Format(FormatError),
    /// A sketch name was empty or too long.
    InvalidName(String),
    /// Another process holds the store's lock file.
    Locked(LockError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(e) => write!(f, "invalid sketch payload: {e}"),
            StoreError::InvalidName(name) => {
                write!(f, "invalid sketch name {name:?}: must be 1..={MAX_NAME_LEN} bytes")
            }
            StoreError::Locked(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Format(e) => Some(e),
            StoreError::InvalidName(_) => None,
            StoreError::Locked(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

/// A crash-safe, named collection of HyperMinHash sketches.
#[derive(Debug)]
pub struct SketchStore<B: Backend> {
    backend: B,
    dir: PathBuf,
    entries: BTreeMap<String, Vec<u8>>,
    /// Known-good WAL length: bytes up to and including the last record
    /// this process successfully fsynced (or salvaged at open).
    wal_len: u64,
    report: RecoveryReport,
    options: StoreOptions,
    /// Single-writer lock, held for real-filesystem stores ([`Self::open`]
    /// / [`Self::open_opts`]); released when the store drops. In-memory
    /// and fault-injected opens via [`Self::open_with`] skip it — they
    /// are same-process by construction.
    lock: Option<StoreLock>,
}

impl SketchStore<FileBackend> {
    /// Open (creating if absent) a store directory on the real
    /// filesystem with default options. Acquires the directory's
    /// single-writer lock; fails with [`StoreError::Locked`] while
    /// another live process holds it.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_opts(dir, StoreOptions::default())
    }

    /// [`Self::open`] with explicit options.
    pub fn open_opts(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        FileBackend.ensure_dir(&dir)?;
        let lock = StoreLock::acquire(&dir).map_err(StoreError::Locked)?;
        let mut store = Self::open_with(FileBackend, dir, options)?;
        store.lock = Some(lock);
        Ok(store)
    }
}

impl<B: Backend> SketchStore<B> {
    /// Open a store over an arbitrary backend.
    ///
    /// Never fails on *corrupt* data — salvage recovers what it can and
    /// the [`recovery_report`](Self::recovery_report) says what happened.
    /// Only real I/O failures (after retries) surface as errors.
    pub fn open_with(
        mut backend: B,
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        backend.ensure_dir(&dir)?;

        let mut entries = BTreeMap::new();
        let mut report = RecoveryReport::default();
        let mut quarantined_bytes: Vec<u8> = Vec::new();

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let mut wal_len = 0u64;
        for (path, is_wal) in [(&snapshot_path, false), (&wal_path, true)] {
            let bytes = backend.read(path)?.unwrap_or_default();
            let salvage = salvage_scan(&bytes);
            for record in salvage.records {
                apply(&mut entries, record);
            }
            for &(start, end) in &salvage.quarantined_ranges {
                quarantined_bytes.extend_from_slice(&bytes[start..end]);
            }
            report.absorb(&salvage.report);
            if is_wal {
                wal_len = bytes.len() as u64;
            }
        }

        let mut store =
            Self { backend, dir, entries, wal_len, report: report.clone(), options, lock: None };

        if !report.is_clean() {
            // Keep the unparseable bytes for forensics (best effort —
            // the quarantine file is not load-bearing).
            if !quarantined_bytes.is_empty() {
                let qpath = store.dir.join(QUARANTINE_FILE);
                let _ = store.backend.append(&qpath, &quarantined_bytes);
            }
            if store.options.auto_heal {
                // Rewrite clean state now so the corruption cannot
                // resurface. Best effort: if the heal itself fails, the
                // in-memory state is still correct and a later compact
                // can finish the job.
                let _ = store.compact();
            }
        }
        Ok(store)
    }

    /// What the salvage scan found when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The storage backend (the fault harness reads its counters).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Store an encoded `HMH1` payload under `name`, durably.
    ///
    /// The payload is validated before anything touches disk, so the
    /// store never persists bytes it could not decode back.
    pub fn put_encoded(&mut self, name: &str, payload: &[u8]) -> Result<(), StoreError> {
        format::decode(payload)?;
        self.append_record(name, RecordKind::Put, payload)?;
        self.entries.insert(name.to_string(), payload.to_vec());
        Ok(())
    }

    /// Store a sketch under `name`, durably.
    pub fn put(&mut self, name: &str, sketch: &HyperMinHash) -> Result<(), StoreError> {
        let payload = format::encode(sketch);
        self.append_record(name, RecordKind::Put, &payload)?;
        self.entries.insert(name.to_string(), payload);
        Ok(())
    }

    /// Encoded payload stored under `name`, if any.
    pub fn get_encoded(&self, name: &str) -> Option<&[u8]> {
        self.entries.get(name).map(Vec::as_slice)
    }

    /// Decoded sketch stored under `name`, if any.
    pub fn get(&self, name: &str) -> Result<Option<HyperMinHash>, StoreError> {
        match self.entries.get(name) {
            Some(payload) => Ok(Some(format::decode(payload)?)),
            None => Ok(None),
        }
    }

    /// Remove `name`, durably (a tombstone record). `Ok(false)` when the
    /// name was not present (no record written).
    pub fn remove(&mut self, name: &str) -> Result<bool, StoreError> {
        if !self.entries.contains_key(name) {
            return Ok(false);
        }
        self.append_record(name, RecordKind::Tombstone, &[])?;
        self.entries.remove(name);
        Ok(true)
    }

    /// All stored names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// One page of stored names: up to `limit` names strictly after
    /// `after` in sorted order (empty `after` starts from the
    /// beginning). The listing analogue of [`Self::digest_page`] — the
    /// cursor contract is identical, so paginated LIST over the wire
    /// inherits the same termination proof (each page advances the
    /// cursor strictly, names are finite).
    pub fn names_page(&self, after: &str, limit: usize) -> Vec<String> {
        use std::ops::Bound;
        self.entries
            .range::<str, _>((Bound::Excluded(after), Bound::Unbounded))
            .take(limit)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// One page of replication digests: up to `limit` `(name, checksum)`
    /// pairs for names strictly after `after` in sorted order (empty
    /// `after` starts from the beginning). The checksum is xxHash64 of
    /// the stored payload under [`crate::log::DIGEST_SEED`], so two
    /// replicas agree on a name exactly when they hold byte-identical
    /// sketches — the property anti-entropy needs, since `format::encode`
    /// is canonical.
    pub fn digest_page(&self, after: &str, limit: usize) -> Vec<(String, u64)> {
        use std::ops::Bound;
        self.entries
            .range::<str, _>((Bound::Excluded(after), Bound::Unbounded))
            .take(limit)
            .map(|(name, payload)| (name.clone(), xxh64(payload, DIGEST_SEED)))
            .collect()
    }

    /// Number of stored sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no sketches are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rewrite the snapshot from current state (atomic replace), then
    /// reset the WAL. Shrinks the store to one record per live name and
    /// drops any corrupt bytes still sitting in the old files.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let mut snapshot = Vec::new();
        for (name, payload) in &self.entries {
            snapshot.extend(encode_record(name, RecordKind::Put, payload));
        }
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        let wal_path = self.dir.join(WAL_FILE);

        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        retry.run(|| atomic_write(backend, &snapshot_path, &snapshot))?;

        // The snapshot now holds everything; the WAL can go. A crash
        // between rename and truncate only leaves duplicate records,
        // which last-wins replay makes harmless.
        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        retry.run(|| {
            backend.truncate(&wal_path, 0)?;
            backend.fsync(&wal_path)
        })?;
        // Note: `self.report` deliberately keeps what the *open* found —
        // healing the files does not rewrite history; `fsck` reports
        // current on-disk health.
        self.wal_len = 0;
        Ok(())
    }

    /// Re-scan both files from disk and report their current health
    /// without modifying anything.
    pub fn fsck(&mut self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();
        for file in [SNAPSHOT_FILE, WAL_FILE] {
            let bytes = self.backend.read(&self.dir.join(file))?.unwrap_or_default();
            report.absorb(&salvage_scan(&bytes).report);
        }
        Ok(report)
    }

    /// Append one record to the WAL with full durability discipline.
    fn append_record(
        &mut self,
        name: &str,
        kind: RecordKind,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(StoreError::InvalidName(name.to_string()));
        }
        let record = encode_record(name, kind, payload);
        let wal_path = self.dir.join(WAL_FILE);
        let wal_len = self.wal_len;
        let mut retry = self.options.retry.clone();
        let backend = &mut self.backend;
        retry.run(|| {
            // Cut torn bytes a previously failed append may have left,
            // so the new record lands at a known-good offset.
            backend.truncate(&wal_path, wal_len)?;
            backend.append(&wal_path, &record)?;
            backend.fsync(&wal_path)
        })?;
        self.wal_len += record.len() as u64;
        Ok(())
    }
}

fn apply(entries: &mut BTreeMap<String, Vec<u8>>, record: Record) {
    match record.kind {
        RecordKind::Put => {
            entries.insert(record.name, record.payload);
        }
        RecordKind::Tombstone => {
            entries.remove(&record.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::MemBackend;
    use hmh_core::{HmhParams, HyperMinHash};
    use std::path::Path;

    fn sketch(items: std::ops::Range<u64>) -> HyperMinHash {
        let params = HmhParams::new(4, 6, 4).unwrap();
        HyperMinHash::from_items(params, items)
    }

    fn mem_store(mem: &MemBackend) -> SketchStore<MemBackend> {
        SketchStore::open_with(mem.clone(), "/store", StoreOptions::no_sleep()).unwrap()
    }

    #[test]
    fn put_get_remove_round_trip() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        let a = sketch(0..100);
        s.put("a", &a).unwrap();
        assert_eq!(s.get("a").unwrap().unwrap(), a);
        assert_eq!(s.len(), 1);
        assert!(s.remove("a").unwrap());
        assert!(!s.remove("a").unwrap());
        assert!(s.get("a").unwrap().is_none());
    }

    #[test]
    fn state_survives_reopen() {
        let mem = MemBackend::new();
        let (a, b) = (sketch(0..50), sketch(25..75));
        {
            let mut s = mem_store(&mem);
            s.put("a", &a).unwrap();
            s.put("b", &b).unwrap();
            s.put("a", &b).unwrap(); // overwrite: last wins
            s.remove("b").unwrap();
        }
        let s = mem_store(&mem);
        assert!(s.recovery_report().is_clean());
        assert_eq!(s.get("a").unwrap().unwrap(), b);
        assert!(s.get("b").unwrap().is_none());
        assert_eq!(s.names().collect::<Vec<_>>(), ["a"]);
    }

    #[test]
    fn compact_shrinks_and_preserves() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        for i in 0..10u64 {
            s.put("hot", &sketch(0..10 * (i + 1))).unwrap();
        }
        let wal = Path::new("/store").join(WAL_FILE);
        let before = mem.len(&wal).unwrap();
        s.compact().unwrap();
        assert_eq!(mem.len(&wal), Some(0));
        assert!(mem.len(&Path::new("/store").join(SNAPSHOT_FILE)).unwrap() < before);
        let expect = sketch(0..100);
        assert_eq!(s.get("hot").unwrap().unwrap(), expect);
        let reopened = mem_store(&mem);
        assert_eq!(reopened.get("hot").unwrap().unwrap(), expect);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_torn_record() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        s.put("keep", &sketch(0..30)).unwrap();
        s.put("casualty", &sketch(0..40)).unwrap();
        // Crash mid-append of the second record: cut 3 bytes.
        let wal = Path::new("/store").join(WAL_FILE);
        let len = mem.len(&wal).unwrap();
        assert!(mem.truncate_at(&wal, len - 3));
        let s2 = mem_store(&mem);
        assert!(s2.recovery_report().truncated_tail);
        assert_eq!(s2.get("keep").unwrap().unwrap(), sketch(0..30));
        assert!(s2.get("casualty").unwrap().is_none());
        // Auto-heal compacted: a further reopen is clean.
        let s3 = mem_store(&mem);
        assert!(s3.recovery_report().is_clean());
    }

    #[test]
    fn bit_flip_is_quarantined_and_healed() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        s.put("a", &sketch(0..30)).unwrap();
        s.put("b", &sketch(0..40)).unwrap();
        s.put("c", &sketch(0..50)).unwrap();
        s.compact().unwrap();
        let snap = Path::new("/store").join(SNAPSHOT_FILE);
        // Corrupt the middle record's payload area.
        let len = mem.len(&snap).unwrap();
        assert!(mem.flip_bit(&snap, len / 2, 3));
        let s2 = mem_store(&mem);
        assert_eq!(s2.recovery_report().quarantined, 1);
        assert!(s2.len() < 3, "the hit record is gone, not silently wrong");
        // Quarantined bytes were kept for forensics.
        assert!(mem.len(&Path::new("/store").join(QUARANTINE_FILE)).unwrap_or(0) > 0);
        // And the store healed itself.
        let s3 = mem_store(&mem);
        assert!(s3.recovery_report().is_clean());
        assert_eq!(s3.len(), s2.len());
    }

    #[test]
    fn invalid_names_and_payloads_rejected_before_disk() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        assert!(matches!(s.put("", &sketch(0..5)), Err(StoreError::InvalidName(_))));
        assert!(matches!(s.put_encoded("x", b"not a sketch"), Err(StoreError::Format(_))));
        assert_eq!(mem.len(&Path::new("/store").join(WAL_FILE)), None, "nothing written");
    }

    #[test]
    fn file_store_is_single_writer_both_orders() {
        let dir = std::env::temp_dir()
            .join(format!("hmh-store-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Order 1: first opener holds, second fails fast with Locked.
        let first = SketchStore::open(&dir).unwrap();
        let err = SketchStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Locked(_)), "{err:?}");
        assert!(err.to_string().contains("locked"), "{err}");
        drop(first);

        // Order 2: the released lock admits the other side; the original
        // opener now fails in turn.
        let second = SketchStore::open(&dir).unwrap();
        assert!(matches!(SketchStore::open(&dir), Err(StoreError::Locked(_))));
        drop(second);

        // Mem-backed opens never lock: two live handles are fine.
        let mem = MemBackend::new();
        let a = mem_store(&mem);
        let b = mem_store(&mem);
        drop((a, b));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = StoreError::Io(io::Error::other("disk on fire"));
        assert!(e.source().is_some());
        let e = StoreError::InvalidName(String::new());
        assert!(e.source().is_none());
    }

    #[test]
    fn fsck_reports_without_modifying() {
        let mem = MemBackend::new();
        let mut s = mem_store(&mem);
        s.put("a", &sketch(0..30)).unwrap();
        assert!(s.fsck().unwrap().is_clean());
        let wal = Path::new("/store").join(WAL_FILE);
        let len = mem.len(&wal).unwrap();
        let before = mem.raw(&wal).unwrap();
        assert!(mem.truncate_at(&wal, len - 1));
        let report = s.fsck().unwrap();
        assert!(report.truncated_tail);
        assert_eq!(mem.raw(&wal).unwrap(), before[..len - 1], "fsck is read-only");
    }
}
