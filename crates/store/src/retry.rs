//! Bounded retry with exponential backoff and jitter.
//!
//! The store treats `Interrupted` / `WouldBlock` / `TimedOut` I/O errors
//! as transient and retries them a bounded number of times; everything
//! else surfaces immediately. Backoff doubles per attempt up to a cap,
//! with deterministic SplitMix64 jitter so concurrent writers do not
//! thundering-herd on the same schedule. The sleeper is injectable so
//! fault-injection tests run at full speed.

use std::io;
use std::time::Duration;

use hmh_hash::splitmix::SplitMix64;

/// Retry schedule for transient I/O errors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling any single delay is clamped to.
    pub max_delay: Duration,
    /// Jitter source; seeded deterministically by default.
    jitter: SplitMix64,
    /// Sleeper — `thread::sleep` in production, a no-op in tests.
    sleep: fn(Duration),
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            jitter: SplitMix64::new(0x5265_7472_794a_6974), // "RetryJit"
            sleep: std::thread::sleep,
        }
    }
}

impl RetryPolicy {
    /// Policy that never sleeps (for tests and fault-injection runs).
    pub fn no_sleep() -> Self {
        Self { sleep: |_| {}, ..Self::default() }
    }

    /// Policy that fails on the first error (no retries at all).
    pub fn none() -> Self {
        Self { max_attempts: 1, sleep: |_| {}, ..Self::default() }
    }

    /// Delay before retry number `attempt` (1-based): exponential base
    /// doubling, clamped to `max_delay`, with up to +50% jitter.
    fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let capped = exp.min(self.max_delay);
        let jitter_num = self.jitter.next_u64() % 512; // 0..512 of 1024 ⇒ up to +50%
        capped + capped.mul_f64(jitter_num as f64 / 1024.0)
    }

    /// Run `op`, retrying transient errors per this policy. Returns the
    /// first success, the first permanent error, or the last transient
    /// error once attempts are exhausted.
    pub fn run<T>(&mut self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < self.max_attempts => {
                    let d = self.delay(attempt);
                    (self.sleep)(d);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Errors worth retrying: the kernel or a lower layer said "try again",
/// not "this cannot work".
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<u32> = p.run(|| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_errors_absorbed_within_budget() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<&str> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok("done")
            }
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(calls, 3);
    }

    #[test]
    fn budget_exhaustion_returns_last_transient_error() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<()> = p.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "always"))
        });
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls, 4, "default max_attempts");
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<()> = p.run(|| {
            calls += 1;
            Err(io::Error::other("broken"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn delays_grow_and_stay_capped() {
        let mut p = RetryPolicy::default();
        let d1 = p.delay(1);
        let d2 = p.delay(2);
        let d3 = p.delay(3);
        assert!(d1 >= p.base_delay);
        assert!(d2 >= p.base_delay * 2);
        assert!(d3 >= p.base_delay * 4);
        // Even at a huge attempt number, jittered delay stays ≤ 1.5×cap.
        let big = p.delay(60);
        assert!(big <= p.max_delay + p.max_delay / 2);
    }
}
