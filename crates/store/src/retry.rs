//! Jittered exponential backoff with attempt and total-time budgets.
//!
//! The store treats `Interrupted` / `WouldBlock` / `TimedOut` I/O errors
//! (and, for network callers, connection-level failures — see
//! [`is_transient`]) as transient and retries them under *two* bounds:
//! a maximum attempt count and a total backoff-time budget. Backoff
//! doubles per attempt up to a cap, with deterministic SplitMix64 jitter
//! so concurrent writers do not thundering-herd on the same schedule.
//! The budget is accounted in *scheduled* (virtual) sleep time, not wall
//! clock, so the same policy replays the same decisions in tests — and
//! the no-op sleeper used by fault-injection runs exercises exactly the
//! schedule production would follow. The sleeper is injectable so those
//! tests run at full speed.
//!
//! The same policy is the client-side retry engine for `hmh-serve`: a
//! BUSY shed or connect failure maps onto a transient `io::Error` and
//! flows through [`RetryPolicy::run`] unchanged.

use std::io;
use std::time::Duration;

use hmh_hash::splitmix::SplitMix64;

/// Retry schedule for transient I/O errors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling any single delay is clamped to.
    pub max_delay: Duration,
    /// Total-time budget: once the scheduled backoff sleeps would exceed
    /// this, the policy stops retrying even with attempts left. Measured
    /// in scheduled sleep time (deterministic), not wall clock.
    pub budget: Duration,
    /// Jitter source; seeded deterministically by default.
    jitter: SplitMix64,
    /// Sleeper — `thread::sleep` in production, a no-op in tests.
    sleep: fn(Duration),
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            budget: Duration::from_secs(2),
            jitter: SplitMix64::new(0x5265_7472_794a_6974), // "RetryJit"
            sleep: std::thread::sleep,
        }
    }
}

impl RetryPolicy {
    /// Policy that never sleeps (for tests and fault-injection runs).
    /// The schedule — and therefore the budget accounting — is identical
    /// to the default; only the actual sleeping is elided.
    pub fn no_sleep() -> Self {
        Self { sleep: |_| {}, ..Self::default() }
    }

    /// Policy that fails on the first error (no retries at all).
    pub fn none() -> Self {
        Self { max_attempts: 1, sleep: |_| {}, ..Self::default() }
    }

    /// This policy with a different jitter stream (callers that retry
    /// concurrently — e.g. many clients backing off from one overloaded
    /// server — should seed per-caller so schedules decorrelate).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter = SplitMix64::new(seed);
        self
    }

    /// This policy with a different total-time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Public view of the backoff schedule: the jittered delay this
    /// policy would sleep before retry number `attempt` (1-based).
    /// Callers that pace their own loops — the replication engine's
    /// anti-entropy interval, for instance — reuse the store's schedule
    /// instead of inventing a second backoff implementation. Consumes
    /// jitter state, so successive calls with the same `attempt`
    /// decorrelate.
    pub fn backoff_delay(&mut self, attempt: u32) -> Duration {
        self.delay(attempt)
    }

    /// Delay before retry number `attempt` (1-based): exponential base
    /// doubling, clamped to `max_delay`, with up to +50% jitter.
    fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let capped = exp.min(self.max_delay);
        let jitter_num = self.jitter.next_u64() % 512; // 0..512 of 1024 ⇒ up to +50%
        capped + capped.mul_f64(jitter_num as f64 / 1024.0)
    }

    /// Run `op`, retrying transient errors per this policy. Returns the
    /// first success, the first permanent error, or the last transient
    /// error once the attempt count or the time budget is exhausted.
    pub fn run<T>(&mut self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        self.run_gated(|_| op(), || Ok(()))
    }

    /// Like [`RetryPolicy::run`], but each *retry* (never the first
    /// attempt) must first pass `gate`; a gate error replaces the retry
    /// and is returned as the call's failure. This is how callers plug a
    /// cross-operation retry budget into the per-operation schedule: the
    /// schedule bounds one call, the gate bounds the fleet of calls
    /// sharing it. `op` receives the 1-based attempt number so callers
    /// can re-stamp per-attempt state (a shrinking deadline, say) into
    /// the request they send.
    pub fn run_gated<T>(
        &mut self,
        mut op: impl FnMut(u32) -> io::Result<T>,
        mut gate: impl FnMut() -> io::Result<()>,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        let mut slept = Duration::ZERO;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < self.max_attempts => {
                    let d = self.delay(attempt);
                    match slept.checked_add(d) {
                        Some(total) if total <= self.budget => slept = total,
                        _ => return Err(e), // budget exhausted
                    }
                    gate()?;
                    (self.sleep)(d);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Errors worth retrying: the kernel or a lower layer said "try again",
/// not "this cannot work". The connection-level kinds never arise from
/// file I/O, so including them costs the store nothing and lets network
/// callers (the `hmh-serve` client) share the policy: a refused connect
/// is a restarting daemon, a reset/abort mid-exchange is a dropped or
/// deadlined peer — all worth another attempt against idempotent
/// operations.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<u32> = p.run(|| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_errors_absorbed_within_budget() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<&str> = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok("done")
            }
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(calls, 3);
    }

    #[test]
    fn budget_exhaustion_returns_last_transient_error() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<()> = p.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "always"))
        });
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls, 4, "default max_attempts");
    }

    #[test]
    fn time_budget_stops_retries_before_attempt_budget() {
        // 100 attempts allowed, but only ~25ms of backoff budget: with a
        // 10ms base delay the schedule stops after at most a couple of
        // retries, long before the attempt count runs out.
        let mut p = RetryPolicy::no_sleep();
        p.max_attempts = 100;
        p.base_delay = Duration::from_millis(10);
        p.max_delay = Duration::from_millis(10);
        p = p.with_budget(Duration::from_millis(25));
        let mut calls = 0;
        let r: io::Result<()> = p.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "always"))
        });
        assert!(r.is_err());
        // Each jittered delay is in [10ms, 15ms]; 25ms admits at most two.
        assert!((2..=3).contains(&calls), "time budget must bound retries, got {calls} calls");
    }

    #[test]
    fn zero_budget_means_no_retries() {
        let mut p = RetryPolicy::no_sleep().with_budget(Duration::ZERO);
        let mut calls = 0;
        let r: io::Result<()> = p.run(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn gate_denial_stops_retries_with_the_gate_error() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let mut gate_calls = 0;
        let r: io::Result<()> = p.run_gated(
            |_| {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::TimedOut, "always"))
            },
            || {
                gate_calls += 1;
                if gate_calls >= 2 {
                    Err(io::Error::other("retry budget exhausted"))
                } else {
                    Ok(())
                }
            },
        );
        let err = r.unwrap_err();
        assert!(err.to_string().contains("retry budget exhausted"));
        // First attempt is free; gate admitted one retry, denied the next.
        assert_eq!(calls, 2);
        assert_eq!(gate_calls, 2);
    }

    #[test]
    fn gated_attempt_numbers_are_one_based_and_increment() {
        let mut p = RetryPolicy::no_sleep();
        let mut seen = Vec::new();
        let r: io::Result<()> = p.run_gated(
            |attempt| {
                seen.push(attempt);
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            },
            || Ok(()),
        );
        assert!(r.is_err());
        assert_eq!(seen, vec![1, 2, 3, 4], "default max_attempts with free first attempt");
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut p = RetryPolicy::no_sleep();
        let mut calls = 0;
        let r: io::Result<()> = p.run(|| {
            calls += 1;
            Err(io::Error::other("broken"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn connection_failures_are_transient() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
        ] {
            assert!(is_transient(&io::Error::new(kind, "net")), "{kind:?}");
        }
        assert!(!is_transient(&io::Error::new(io::ErrorKind::PermissionDenied, "no")));
        assert!(!is_transient(&io::Error::new(io::ErrorKind::WriteZero, "torn")));
    }

    #[test]
    fn delays_grow_and_stay_capped() {
        let mut p = RetryPolicy::default();
        let d1 = p.delay(1);
        let d2 = p.delay(2);
        let d3 = p.delay(3);
        assert!(d1 >= p.base_delay);
        assert!(d2 >= p.base_delay * 2);
        assert!(d3 >= p.base_delay * 4);
        // Even at a huge attempt number, jittered delay stays ≤ 1.5×cap.
        let big = p.delay(60);
        assert!(big <= p.max_delay + p.max_delay / 2);
    }

    #[test]
    fn jitter_seeds_decorrelate_schedules() {
        let mut a = RetryPolicy::no_sleep().with_jitter_seed(1);
        let mut b = RetryPolicy::no_sleep().with_jitter_seed(2);
        let da: Vec<Duration> = (1..8).map(|i| a.delay(i)).collect();
        let db: Vec<Duration> = (1..8).map(|i| b.delay(i)).collect();
        assert_ne!(da, db, "different seeds must differ somewhere");
        let mut a2 = RetryPolicy::no_sleep().with_jitter_seed(1);
        let da2: Vec<Duration> = (1..8).map(|i| a2.delay(i)).collect();
        assert_eq!(da, da2, "same seed replays the same schedule");
    }
}
