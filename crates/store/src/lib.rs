//! Crash-safe persistence for HyperMinHash sketches.
//!
//! A [`SketchStore`] is a named collection of sketches that survives
//! crashes at any point: every record is framed with a magic, explicit
//! lengths and an xxHash64 checksum; mutations go through an append-only
//! WAL with truncate-to-known-good + append + fsync discipline; and
//! compaction replaces the snapshot only via write-temp + fsync + atomic
//! rename. Opening a store runs a *salvage scan* that recovers every
//! intact record from a damaged file — re-synchronizing on record magic
//! after torn tails or bit flips — and quarantines the rest, reporting
//! exactly what happened in a [`RecoveryReport`].
//!
//! The same store logic runs against the real filesystem
//! ([`FileBackend`]) or an in-memory one ([`MemBackend`]), and the
//! [`FaultyIo`] wrapper injects deterministic, seed-replayable faults
//! (short writes, transient and permanent `io::Error`s) for the
//! fault-injection test harness; see `tests/fault_injection.rs` at the
//! workspace root.
//!
//! ```
//! use hmh_core::{HmhParams, HyperMinHash};
//! use hmh_store::{MemBackend, SketchStore, StoreOptions};
//!
//! let params = HmhParams::new(6, 6, 4).unwrap();
//! let sketch = HyperMinHash::from_items(params, 0u64..1000);
//!
//! let disk = MemBackend::new();
//! let mut store =
//!     SketchStore::open_with(disk.clone(), "/sketches", StoreOptions::no_sleep()).unwrap();
//! store.put("events", &sketch).unwrap();
//! drop(store);
//!
//! let store = SketchStore::open_with(disk, "/sketches", StoreOptions::no_sleep()).unwrap();
//! assert!(store.recovery_report().is_clean());
//! assert_eq!(store.get("events").unwrap().unwrap(), sketch);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod fault;
pub mod lock;
pub mod log;
pub mod retry;
pub mod store;

pub use backend::{atomic_write, atomic_write_file, sibling_tmp, Backend, FileBackend};
pub use fault::{BitRotPlan, Fault, FaultPlan, FaultyIo, MemBackend};
pub use lock::{LockError, StoreLock, LOCK_FILE};
pub use log::{CorruptSpan, Record, RecordKind, RecoveryReport, Salvage, ScanStep, DIGEST_SEED};
pub use retry::{is_transient, RetryPolicy};
pub use store::{
    FsckDetail, ScrubFinding, ScrubSlice, ScrubStats, SketchStore, StoreError, StoreOptions,
    QUARANTINE_FILE, QUARANTINE_NAMES_FILE, SCRUB_SLICE_BYTES, SNAPSHOT_FILE, WAL_FILE,
};
