//! Single-writer lock file for store directories.
//!
//! The record log's durability discipline (truncate-to-known-good +
//! append + fsync) assumes exactly one process mutates the WAL. Two
//! concurrent appenders — a running `hmh serve` daemon and a stray
//! `hmh store put` invocation, say — would interleave records and
//! truncate each other's acknowledged writes. The lock file makes that
//! impossible: a store directory on the real filesystem can be opened by
//! one process at a time.
//!
//! Mechanism: `LOCK` inside the store directory, created with
//! `O_CREAT|O_EXCL` (`create_new`) so acquisition is atomic, holding the
//! owner's PID as decimal text. Dropping the guard removes the file.
//!
//! A crashed (or SIGKILLed) owner leaves the file behind; requiring
//! manual cleanup would turn every daemon crash into an operator page.
//! On Linux the PID is checked against `/proc`: a lock whose owner no
//! longer exists is *stale* and is stolen (removed, then re-acquired
//! atomically — if two processes race for a stale lock, `create_new`
//! still admits only one). On platforms without `/proc` an existing lock
//! is conservatively treated as held.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Lock file name inside a store directory.
pub const LOCK_FILE: &str = "LOCK";

/// Why a lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// The lock file path.
        path: PathBuf,
        /// Owner PID as recorded in the lock file (`None` if unreadable).
        pid: Option<u32>,
    },
    /// An I/O failure while acquiring or inspecting the lock.
    Io(io::Error),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Held { path, pid: Some(pid) } => {
                write!(
                    f,
                    "store is locked by running process {pid} ({}); \
                     stop it before mutating the store from here",
                    path.display()
                )
            }
            LockError::Held { path, pid: None } => {
                write!(f, "store is locked ({}): lock owner unknown", path.display())
            }
            LockError::Io(e) => write!(f, "store lock I/O error: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Io(e) => Some(e),
            LockError::Held { .. } => None,
        }
    }
}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> Self {
        LockError::Io(e)
    }
}

/// A held store lock. Removing the file on drop releases it.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquire the lock for `dir` (which must already exist), stealing a
    /// stale one when its owner is provably dead.
    pub fn acquire(dir: &Path) -> Result<Self, LockError> {
        let path = dir.join(LOCK_FILE);
        // Two tries: the second runs only after a stale lock was removed,
        // and still goes through the atomic create_new gate.
        for _ in 0..2 {
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Losing the PID (full disk, say) must not hand out a
                    // half-written lock: give it back and fail.
                    if let Err(e) = f
                        .write_all(std::process::id().to_string().as_bytes())
                        .and_then(|()| f.sync_all())
                    {
                        let _ = fs::remove_file(&path);
                        return Err(LockError::Io(e));
                    }
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let pid = read_owner(&path);
                    match pid {
                        Some(pid) if !process_alive(pid) => {
                            // Stale: the owner is gone. Remove and retry
                            // through create_new (racing stealers — only
                            // one wins the re-create).
                            let _ = fs::remove_file(&path);
                        }
                        _ => return Err(LockError::Held { path, pid }),
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        // The stale lock reappeared after we removed it: someone else won
        // the steal race and is alive.
        Err(LockError::Held { pid: read_owner(&path), path })
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Best effort: a leaked file is reclaimed by staleness detection.
        let _ = fs::remove_file(&self.path);
    }
}

fn read_owner(path: &Path) -> Option<u32> {
    let text = fs::read_to_string(path).ok()?;
    text.trim().parse().ok()
}

/// Whether `pid` names a live process. On Linux, `/proc/<pid>` existence
/// is the test. Elsewhere there is no dependency-free check, so report
/// "alive" — an existing lock is then never stolen (conservative: a
/// stray lock needs manual removal, but a live owner is never raced).
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hmh-lock-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn exclusive_both_acquisition_orders() {
        let dir = tmpdir("order");
        // Order 1: A holds, B must fail.
        let a = StoreLock::acquire(&dir).unwrap();
        let err = StoreLock::acquire(&dir).unwrap_err();
        let LockError::Held { pid, .. } = err else { panic!("expected Held, got {err:?}") };
        assert_eq!(pid, Some(std::process::id()), "our own live pid is the owner");
        drop(a);
        // Order 2: B holds (acquired after A released), A must fail.
        let b = StoreLock::acquire(&dir).unwrap();
        assert!(matches!(StoreLock::acquire(&dir), Err(LockError::Held { .. })));
        drop(b);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_is_stolen() {
        let dir = tmpdir("stale");
        // A pid that cannot exist: beyond every configurable pid_max.
        fs::write(dir.join(LOCK_FILE), "4194305999").unwrap();
        let lock = StoreLock::acquire(&dir).expect("dead owner's lock must be stolen");
        assert_eq!(read_owner(lock.path()), Some(std::process::id()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_owner_is_treated_as_held() {
        let dir = tmpdir("garbled");
        fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        let err = StoreLock::acquire(&dir).unwrap_err();
        assert!(matches!(err, LockError::Held { pid: None, .. }), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_messages_name_the_holder() {
        let dir = tmpdir("msg");
        let _a = StoreLock::acquire(&dir).unwrap();
        let msg = StoreLock::acquire(&dir).unwrap_err().to_string();
        assert!(msg.contains(&std::process::id().to_string()), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }
}
