//! Record framing and the salvage recovery scan.
//!
//! The store's files are sequences of self-delimiting, self-checking
//! records (little-endian):
//!
//! ```text
//! offset      size  field
//! 0           4     record magic  "HMR1"
//! 4           1     record kind (1 = put, 2 = tombstone)
//! 5           2     name length N (u16 LE)
//! 7           4     payload length M (u32 LE)
//! 11          N     name (UTF-8)
//! 11+N        M     payload (an `HMH1` encoded sketch; empty for tombstones)
//! 11+N+M      8     xxHash64 of bytes [0, 11+N+M) with seed RECORD_SEED
//! ```
//!
//! The framing is designed for *salvage*: every record both announces its
//! own length and carries a checksum over everything before the checksum,
//! so a reader that loses framing (torn tail, flipped bits, garbage from
//! a partially overwritten region) can re-synchronize by scanning forward
//! for the next magic and validating the candidate record end-to-end. A
//! false-positive magic inside payload bytes is harmless: its checksum
//! fails and the scan moves on.

use hmh_hash::xxhash::xxh64;

/// Magic bytes opening every record.
pub const RECORD_MAGIC: [u8; 4] = *b"HMR1";

/// Seed of the per-record xxHash64 (distinct from the sketch format's 0).
pub const RECORD_SEED: u64 = 0x484d_5231_5345_4544; // "HMR1SEED"

/// Seed for replication digests: the per-name checksum replicas exchange
/// during anti-entropy. Deliberately distinct from [`RECORD_SEED`] so a
/// digest can never be confused with (or forged from) a log trailer.
pub const DIGEST_SEED: u64 = 0x484d_5231_4447_5354; // "HMR1DGST"

/// Fixed-size prefix before the name bytes.
pub const RECORD_HEADER: usize = 11;

/// Trailing checksum size.
pub const RECORD_TRAILER: usize = 8;

/// Maximum sketch-name length the store accepts (also bounds what the
/// salvage scan will believe from a length field).
pub const MAX_NAME_LEN: usize = 4096;

/// Maximum record payload the store accepts — the format ceiling on an
/// encoded sketch. Like [`MAX_NAME_LEN`], this caps what the salvage
/// scan will believe from a length field: a corrupt or hostile header
/// claiming a multi-gigabyte payload is rejected as corruption instead
/// of driving a matching read or allocation.
pub const MAX_PAYLOAD_LEN: usize = hmh_core::format::MAX_ENCODED_LEN;

/// What a record does to its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Bind the name to the payload.
    Put,
    /// Remove the name.
    Tombstone,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Put => 1,
            RecordKind::Tombstone => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RecordKind::Put),
            2 => Some(RecordKind::Tombstone),
            _ => None,
        }
    }
}

/// One intact record recovered from a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The sketch name the record applies to.
    pub name: String,
    /// Put or tombstone.
    pub kind: RecordKind,
    /// Encoded sketch bytes (empty for tombstones).
    pub payload: Vec<u8>,
}

/// Outcome of a salvage scan over one file (or, summed, a whole store).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records recovered.
    pub recovered: usize,
    /// Corrupt regions skipped (each a maximal run of unparseable bytes).
    pub quarantined: usize,
    /// True when the file ends in a torn (incomplete but well-formed so
    /// far) record — the signature of a crash mid-append.
    pub truncated_tail: bool,
}

impl RecoveryReport {
    /// True when the scan saw any corruption at all.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && !self.truncated_tail
    }

    /// Fold another report into this one (for multi-file stores).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.recovered += other.recovered;
        self.quarantined += other.quarantined;
        self.truncated_tail |= other.truncated_tail;
    }
}

/// Full result of salvaging one file.
#[derive(Debug, Clone, Default)]
pub struct Salvage {
    /// Intact records, in file order.
    pub records: Vec<Record>,
    /// Scan statistics.
    pub report: RecoveryReport,
    /// Byte ranges `(start, end)` of the quarantined regions.
    pub quarantined_ranges: Vec<(usize, usize)>,
    /// Per-record detail for the quarantined regions: best-effort
    /// attribution of each corrupt record (its name, where it sits, and
    /// the checksum mismatch), for fsck reporting and name-level
    /// quarantine. A region whose header is itself unreadable yields one
    /// unattributed span (`name: None`, checksums zero).
    pub corrupt_spans: Vec<CorruptSpan>,
}

/// One corrupt record (or unparseable region) located by a scan.
///
/// `name` is best-effort: it is recovered only when the record header
/// and name bytes still parse (the common single-bit-rot case). A flip
/// inside the name bytes themselves attributes the span to the wrong
/// name — the checksum cannot say *which* bytes lied — so name-level
/// consumers must treat attribution as a hint, with digest-based
/// anti-entropy as the backstop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSpan {
    /// Byte offset of the span within its file.
    pub offset: usize,
    /// Span length in bytes.
    pub len: usize,
    /// Record name, when the header and name bytes still parse.
    pub name: Option<String>,
    /// Checksum the record trailer claims (0 when unattributed).
    pub expected: u64,
    /// Checksum the surviving bytes actually hash to (0 when unattributed).
    pub actual: u64,
}

/// Probe a corrupt region for a plausibly-framed record at `pos`: magic
/// and kind intact, lengths within caps, full record bytes present. The
/// checksum necessarily fails (that is why the region is corrupt) but
/// the mismatch pair and the name are recoverable.
fn probe_record(buf: &[u8], pos: usize, end: usize) -> Option<CorruptSpan> {
    let rest = &buf[pos..];
    if rest.len() < RECORD_HEADER || rest[..4] != RECORD_MAGIC {
        return None;
    }
    RecordKind::from_byte(rest[4])?;
    let name_len = u16::from_le_bytes([rest[5], rest[6]]) as usize;
    let payload_len = u32::from_le_bytes([rest[7], rest[8], rest[9], rest[10]]) as usize;
    if name_len > MAX_NAME_LEN || payload_len > MAX_PAYLOAD_LEN {
        return None;
    }
    let total = RECORD_HEADER + name_len + payload_len + RECORD_TRAILER;
    if rest.len() < total || pos + total > end {
        return None;
    }
    let body_end = total - RECORD_TRAILER;
    let expected = u64::from_le_bytes(
        rest[body_end..total].try_into().expect("invariant: trailer slice is 8 bytes"),
    );
    let actual = xxh64(&rest[..body_end], RECORD_SEED);
    let name = std::str::from_utf8(&rest[RECORD_HEADER..RECORD_HEADER + name_len])
        .ok()
        .map(str::to_string);
    Some(CorruptSpan { offset: pos, len: total, name, expected, actual })
}

/// Attribution cap per quarantined region: a trashed region full of
/// spurious magics must not balloon the span list.
const MAX_SPANS_PER_REGION: usize = 8;

/// Best-effort per-record detail for one quarantined region.
fn attribute_region(buf: &[u8], start: usize, end: usize) -> Vec<CorruptSpan> {
    let mut spans = Vec::new();
    let mut pos = start;
    while pos < end && spans.len() < MAX_SPANS_PER_REGION {
        match probe_record(buf, pos, end) {
            Some(span) => {
                let next = pos + span.len;
                spans.push(span);
                pos = next;
            }
            None => match find_magic(buf, pos + 1) {
                Some(hit) if hit < end => pos = hit,
                _ => break,
            },
        }
    }
    if spans.is_empty() {
        spans.push(CorruptSpan { offset: start, len: end - start, name: None, expected: 0, actual: 0 });
    }
    spans
}

/// Encode one record.
///
/// # Panics
/// If `name` exceeds [`MAX_NAME_LEN`] or `payload` exceeds `u32::MAX`
/// bytes; the store validates both before calling.
pub fn encode_record(name: &str, kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    assert!(name.len() <= MAX_NAME_LEN, "name too long");
    assert!(payload.len() <= MAX_PAYLOAD_LEN, "payload too large");
    let total = RECORD_HEADER + name.len() + payload.len() + RECORD_TRAILER;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(kind.to_byte());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(payload);
    let digest = xxh64(&out, RECORD_SEED);
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Why a candidate record at some offset failed to parse.
enum Reject {
    /// Bytes at the offset cannot be a record (bad magic, bad kind, bad
    /// checksum, bad name) — skip forward and re-synchronize.
    Corrupt,
    /// Bytes are a well-formed record prefix that runs past end of file —
    /// a torn tail if nothing follows.
    Incomplete,
}

/// Try to parse one record at `buf[pos..]`.
fn parse_at(buf: &[u8], pos: usize) -> Result<(Record, usize), Reject> {
    let rest = &buf[pos..];
    // Magic: a proper prefix of the magic at EOF still counts as a torn
    // record start (a crash can cut mid-magic).
    let magic_len = rest.len().min(4);
    if rest[..magic_len] != RECORD_MAGIC[..magic_len] {
        return Err(Reject::Corrupt);
    }
    if rest.len() < RECORD_HEADER {
        return Err(Reject::Incomplete);
    }
    let Some(kind) = RecordKind::from_byte(rest[4]) else {
        return Err(Reject::Corrupt);
    };
    let name_len = u16::from_le_bytes([rest[5], rest[6]]) as usize;
    let payload_len = u32::from_le_bytes([rest[7], rest[8], rest[9], rest[10]]) as usize;
    if name_len > MAX_NAME_LEN || payload_len > MAX_PAYLOAD_LEN {
        return Err(Reject::Corrupt);
    }
    let total = RECORD_HEADER + name_len + payload_len + RECORD_TRAILER;
    if rest.len() < total {
        return Err(Reject::Incomplete);
    }
    let body_end = total - RECORD_TRAILER;
    let digest = u64::from_le_bytes(
        rest[body_end..total].try_into().expect("invariant: trailer slice is 8 bytes"),
    );
    if xxh64(&rest[..body_end], RECORD_SEED) != digest {
        return Err(Reject::Corrupt);
    }
    let Ok(name) = std::str::from_utf8(&rest[RECORD_HEADER..RECORD_HEADER + name_len]) else {
        return Err(Reject::Corrupt);
    };
    let payload = rest[RECORD_HEADER + name_len..body_end].to_vec();
    Ok((Record { name: name.to_string(), kind, payload }, total))
}

/// Scan a file image, recovering every intact record and quarantining
/// everything else. Never panics, whatever the input.
pub fn salvage_scan(buf: &[u8]) -> Salvage {
    let mut out = Salvage::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        match parse_at(buf, pos) {
            Ok((record, len)) => {
                out.records.push(record);
                out.report.recovered += 1;
                pos += len;
            }
            Err(reject) => {
                // Re-synchronize: find the next *valid* record. An
                // `Incomplete` here is NOT automatically a torn tail — a
                // flipped bit in a length field also makes a mid-file
                // record claim to run past EOF, with intact records
                // after it. Only an incomplete candidate with no valid
                // record anywhere behind it is a true torn tail.
                let start = pos;
                let first_incomplete = match reject {
                    Reject::Incomplete => Some(pos),
                    Reject::Corrupt => None,
                };
                let mut cursor = pos + 1;
                let mut resumed = None;
                let mut tail_torn = first_incomplete;
                while let Some(hit) = find_magic(buf, cursor) {
                    match parse_at(buf, hit) {
                        Ok(_) => {
                            resumed = Some(hit);
                            break;
                        }
                        Err(Reject::Incomplete) => {
                            tail_torn.get_or_insert(hit);
                            cursor = hit + 1;
                        }
                        Err(Reject::Corrupt) => cursor = hit + 1,
                    }
                }
                match resumed {
                    Some(hit) => {
                        out.quarantined_region(buf, start, hit);
                        pos = hit;
                    }
                    None => {
                        // Nothing valid follows. The earliest incomplete
                        // candidate marks a torn append; bytes before it
                        // (if any) are corruption.
                        match tail_torn {
                            Some(torn) => {
                                if torn > start {
                                    out.quarantined_region(buf, start, torn);
                                }
                                out.report.truncated_tail = true;
                            }
                            None => out.quarantined_region(buf, start, buf.len()),
                        }
                        break;
                    }
                }
            }
        }
    }
    out
}

impl Salvage {
    fn quarantined_region(&mut self, buf: &[u8], start: usize, end: usize) {
        self.report.quarantined += 1;
        self.quarantined_ranges.push((start, end));
        self.corrupt_spans.extend(attribute_region(buf, start, end));
    }
}

/// One step of an incremental scan over a file image — the unit the
/// online scrub verifies per paced slice. Unlike [`salvage_scan`] (which
/// walks a whole file), each call inspects exactly one record (or one
/// corrupt region) starting at `pos` and hands back where to resume, so
/// a caller can bound the work done under a lock.
#[derive(Debug, Clone)]
pub enum ScanStep {
    /// An intact record; `next` is the offset just past it.
    Record {
        /// The verified record's name.
        name: String,
        /// Put or tombstone.
        kind: RecordKind,
        /// Offset to resume scanning from.
        next: usize,
    },
    /// A corrupt region with best-effort attribution; `next` is the
    /// offset of the next *valid* record (or end of scan range).
    Corrupt {
        /// Per-record detail for the region.
        spans: Vec<CorruptSpan>,
        /// Offset to resume scanning from.
        next: usize,
    },
    /// `pos` reached the end of the scan range.
    End,
}

/// Inspect one record (or one maximal corrupt region) at `buf[pos..limit]`.
///
/// `limit` bounds what the scan believes is committed (a WAL's
/// known-good length); a record that would run past it counts as
/// corrupt, never as a torn tail — the scrub only looks at bytes that
/// were once acknowledged, so anything unreadable there is rot.
pub fn scan_step(buf: &[u8], pos: usize, limit: usize) -> ScanStep {
    let limit = limit.min(buf.len());
    if pos >= limit {
        return ScanStep::End;
    }
    let view = &buf[..limit];
    if let Ok((record, len)) = parse_at(view, pos) {
        return ScanStep::Record { name: record.name, kind: record.kind, next: pos + len };
    }
    // Corrupt (or truncated-within-limit) region: resync exactly like
    // salvage — the region ends at the next offset that parses as a
    // complete, checksum-valid record.
    let mut cursor = pos + 1;
    let mut end = limit;
    while let Some(hit) = find_magic(view, cursor) {
        if parse_at(view, hit).is_ok() {
            end = hit;
            break;
        }
        cursor = hit + 1;
    }
    ScanStep::Corrupt { spans: attribute_region(view, pos, end), next: end }
}

/// Next offset ≥ `from` where the 4 magic bytes occur (fully).
fn find_magic(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    (from..=buf.len() - 4).find(|&i| buf[i..i + 4] == RECORD_MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, payload: &[u8]) -> Vec<u8> {
        encode_record(name, RecordKind::Put, payload)
    }

    #[test]
    fn encode_parse_round_trip() {
        let bytes = rec("alpha", b"payload-bytes");
        let s = salvage_scan(&bytes);
        assert!(s.report.is_clean());
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].name, "alpha");
        assert_eq!(s.records[0].payload, b"payload-bytes");
        assert_eq!(s.records[0].kind, RecordKind::Put);
    }

    #[test]
    fn tombstones_round_trip() {
        let bytes = encode_record("gone", RecordKind::Tombstone, b"");
        let s = salvage_scan(&bytes);
        assert_eq!(s.records[0].kind, RecordKind::Tombstone);
        assert!(s.records[0].payload.is_empty());
    }

    #[test]
    fn empty_file_is_clean() {
        let s = salvage_scan(&[]);
        assert!(s.report.is_clean());
        assert!(s.records.is_empty());
    }

    #[test]
    fn torn_tail_detected_at_every_cut() {
        let mut log = rec("a", &[1; 40]);
        log.extend(rec("b", &[2; 40]));
        let full = salvage_scan(&log).records.len();
        assert_eq!(full, 2);
        let first_len = rec("a", &[1; 40]).len();
        for cut in 0..log.len() {
            let s = salvage_scan(&log[..cut]);
            let expect = usize::from(cut >= first_len);
            assert_eq!(s.records.len(), expect, "cut at {cut}");
            if cut != 0 && cut != first_len {
                assert!(s.report.truncated_tail, "cut at {cut}");
            }
        }
    }

    #[test]
    fn bit_flip_quarantines_only_the_hit_record() {
        let a = rec("a", &[1; 40]);
        let b = rec("b", &[2; 40]);
        let c = rec("c", &[3; 40]);
        let mut log = a.clone();
        log.extend(&b);
        log.extend(&c);
        for bit in 0..(b.len() * 8) {
            let mut bad = log.clone();
            bad[a.len() + bit / 8] ^= 1 << (bit % 8);
            let s = salvage_scan(&bad);
            let names: Vec<&str> = s.records.iter().map(|r| r.name.as_str()).collect();
            assert!(names.contains(&"a"), "bit {bit}");
            assert!(names.contains(&"c"), "bit {bit}");
            assert!(!names.contains(&"b"), "bit {bit}: corrupt record must not survive");
            assert_eq!(s.report.quarantined, 1, "bit {bit}");
        }
    }

    #[test]
    fn garbage_between_records_is_skipped() {
        let mut log = rec("a", &[1; 20]);
        log.extend(b"############ random junk ############");
        log.extend(rec("b", &[2; 20]));
        let s = salvage_scan(&log);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.report.quarantined, 1);
        assert_eq!(s.quarantined_ranges.len(), 1);
    }

    #[test]
    fn spurious_magic_inside_garbage_is_not_a_record() {
        let mut log = rec("a", &[1; 20]);
        let mut junk = b"junk".to_vec();
        junk.extend_from_slice(&RECORD_MAGIC);
        junk.extend(b"more junk that is not a record");
        log.extend(&junk);
        log.extend(rec("b", &[2; 20]));
        let s = salvage_scan(&log);
        let names: Vec<&str> = s.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn payload_containing_record_magic_survives() {
        // A payload that embeds the record magic must not confuse framing.
        let mut payload = vec![0u8; 10];
        payload.extend_from_slice(&RECORD_MAGIC);
        payload.extend([7u8; 10]);
        let mut log = rec("tricky", &payload);
        log.extend(rec("after", &[9; 5]));
        let s = salvage_scan(&log);
        assert!(s.report.is_clean());
        assert_eq!(s.records[0].payload, payload);
        assert_eq!(s.records[1].name, "after");
    }

    #[test]
    fn oversized_payload_length_field_rejected_not_torn() {
        // A header claiming a payload beyond the format ceiling is
        // corruption, never a torn tail: no legitimate writer can have
        // produced it, so the scan must not wait for gigabytes that will
        // never arrive (or read them as a "record" if they do).
        let mut bytes = rec("x", &[1; 8]);
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        let s = salvage_scan(&bytes);
        assert_eq!(s.records.len(), 0);
        assert_eq!(s.report.quarantined, 1);
        assert!(!s.report.truncated_tail, "lying length is corruption, not a torn append");
    }

    #[test]
    fn adversarial_corpus_never_panics_or_overallocates() {
        // Hostile record streams: lying lengths, garbage headers,
        // truncations, magic floods. Salvage must classify every one
        // without panicking and without believing any length field it
        // cannot verify against bytes actually present.
        let good = rec("ok", &[7; 24]);
        let mut corpus: Vec<Vec<u8>> = vec![
            vec![0xff; 256],
            RECORD_MAGIC.repeat(64),
            {
                // Magic + kind, then maximal u16 name and u32 payload lengths.
                let mut b = RECORD_MAGIC.to_vec();
                b.push(1);
                b.extend_from_slice(&u16::MAX.to_le_bytes());
                b.extend_from_slice(&u32::MAX.to_le_bytes());
                b
            },
            {
                // A plausible (in-range) lying length with no body behind it,
                // mid-file: followed by a real record, it must resync.
                let mut b = RECORD_MAGIC.to_vec();
                b.push(2);
                b.extend_from_slice(&64u16.to_le_bytes());
                b.extend_from_slice(&1024u32.to_le_bytes());
                b.extend_from_slice(&good);
                b
            },
        ];
        for cut in [1, 5, 7, 11, 12] {
            corpus.push(good[..cut].to_vec());
        }
        for bytes in &corpus {
            let s = salvage_scan(bytes);
            for r in &s.records {
                assert!(r.payload.len() <= MAX_PAYLOAD_LEN);
            }
        }
        // The resync case recovers the trailing good record.
        let resync = salvage_scan(&corpus[3]);
        assert_eq!(resync.records.len(), 1);
        assert_eq!(resync.records[0].name, "ok");
    }

    #[test]
    fn oversized_name_length_field_rejected() {
        let mut bytes = rec("x", &[1; 8]);
        // Claim a name length beyond MAX_NAME_LEN; checksum also breaks,
        // but the length gate alone must prevent huge bogus reads.
        bytes[5] = 0xff;
        bytes[6] = 0xff;
        let s = salvage_scan(&bytes);
        assert_eq!(s.records.len(), 0);
        assert!(!s.report.is_clean());
    }
}
