//! Storage backend abstraction.
//!
//! The store talks to durable storage through the [`Backend`] trait so the
//! same store logic runs against the real filesystem ([`FileBackend`]) and
//! against the deterministic fault-injection harness
//! ([`FaultyIo`](crate::fault::FaultyIo) over
//! [`MemBackend`](crate::fault::MemBackend)). The trait deliberately
//! exposes *crash-shaped* primitives — append, whole-file replace, fsync,
//! atomic rename — rather than seek/write, because those are the only
//! operations whose failure semantics the store reasons about.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Durable-storage primitives the store is built on.
///
/// Failure contract: `append` and `write_new` may persist any prefix of
/// `data` before returning an error (a torn write); `rename` is atomic
/// (the destination holds either the old or the new content, never a
/// mixture); `fsync` returning `Ok` means previously written bytes for
/// that path are durable.
pub trait Backend {
    /// Read a whole file; `Ok(None)` if it does not exist.
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>>;

    /// Append bytes to a file, creating it if absent.
    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Create or truncate a file and write `data`.
    fn write_new(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Truncate a file to `len` bytes (no-op if already shorter).
    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()>;

    /// Flush a file's content to durable storage.
    fn fsync(&mut self, path: &Path) -> io::Result<()>;

    /// Atomically replace `to` with `from`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file; `Ok` even if it does not exist.
    fn remove(&mut self, path: &Path) -> io::Result<()>;

    /// Create a directory (and parents) if missing.
    fn ensure_dir(&mut self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct FileBackend;

impl FileBackend {
    /// Fsync a directory so a rename within it is durable (POSIX
    /// requires syncing the parent directory; a no-op elsewhere).
    fn sync_dir(path: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            if let Some(parent) = path.parent() {
                if let Ok(dir) = fs::File::open(parent) {
                    dir.sync_all()?;
                }
            }
        }
        #[cfg(not(unix))]
        let _ = path;
        Ok(())
    }
}

impl Backend for FileBackend {
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(data)
    }

    fn write_new(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        // hmh-lint: allow(durability) — Backend primitive; atomic_write composes it with fsync + rename
        fs::write(path, data)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        match fs::OpenOptions::new().write(true).open(path) {
            Ok(f) => {
                if f.metadata()?.len() > len {
                    f.set_len(len)?;
                }
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound && len == 0 => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn fsync(&mut self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        // hmh-lint: allow(durability) — Backend primitive; callers fsync the source first (atomic_write discipline), and sync_dir below persists the entry
        fs::rename(from, to)?;
        Self::sync_dir(to)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn ensure_dir(&mut self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
}

/// Crash-safe whole-file write: write a sibling temp file, fsync it, then
/// atomically rename it into place. A crash at any point leaves either
/// the previous file content or the new one at `path` — never a torn
/// mixture (the torn bytes live only in the temp file).
pub fn atomic_write(backend: &mut impl Backend, path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = sibling_tmp(path);
    backend.write_new(&tmp, data)?;
    backend.fsync(&tmp)?;
    backend.rename(&tmp, path)
}

/// The temp path `atomic_write` stages through: `<path>.tmp` next to the
/// target, so the rename never crosses a filesystem boundary.
pub fn sibling_tmp(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Convenience: [`atomic_write`] against the real filesystem.
pub fn atomic_write_file(path: &Path, data: &[u8]) -> io::Result<()> {
    atomic_write(&mut FileBackend, path, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hmh-store-backend-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_backend_round_trip() {
        let dir = tmpdir("rt");
        let mut b = FileBackend;
        let p = dir.join("f");
        assert_eq!(b.read(&p).unwrap(), None);
        b.append(&p, b"hello ").unwrap();
        b.append(&p, b"world").unwrap();
        assert_eq!(b.read(&p).unwrap().unwrap(), b"hello world");
        b.truncate(&p, 5).unwrap();
        assert_eq!(b.read(&p).unwrap().unwrap(), b"hello");
        b.fsync(&p).unwrap();
        b.remove(&p).unwrap();
        b.remove(&p).unwrap(); // idempotent
        assert_eq!(b.read(&p).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces() {
        let dir = tmpdir("aw");
        let p = dir.join("target");
        atomic_write_file(&p, b"one").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"one");
        atomic_write_file(&p, b"two").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"two");
        assert!(!sibling_tmp(&p).exists(), "temp cleaned by rename");
        let _ = fs::remove_dir_all(&dir);
    }
}
