//! Deterministic fault injection for crash-safety testing.
//!
//! [`MemBackend`] is an in-memory filesystem; [`FaultyIo`] wraps any
//! [`Backend`] and injects faults from a [`FaultPlan`] — a deterministic
//! schedule derived from a single `SplitMix64` seed. Replaying the same
//! seed replays exactly the same faults, so every failing fuzz case is a
//! reproducible unit test.
//!
//! Injected fault classes (all seed-scheduled):
//!
//! * **short writes** — an `append`/`write_new` persists only a prefix of
//!   the data, then fails (a torn write / crash mid-write);
//! * **transient errors** — `io::ErrorKind::Interrupted` failures that a
//!   retry should absorb;
//! * **permanent errors** — `io::ErrorKind::Other` failures the store
//!   must surface;
//! * **bit flips at chosen offsets** and **truncate-at-offset** — at-rest
//!   corruption applied to the stored image between store sessions
//!   (exposed as [`MemBackend::flip_bit`] / [`MemBackend::truncate_at`],
//!   driven by the same seed in the harness).

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use hmh_hash::splitmix::SplitMix64;

use crate::backend::Backend;

/// In-memory filesystem with shared interior state.
///
/// Clones share the same files, so a test can hold one handle for
/// at-rest corruption while the store owns another (possibly wrapped in
/// [`FaultyIo`]).
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    files: Rc<RefCell<HashMap<PathBuf, Vec<u8>>>>,
}

impl MemBackend {
    /// Fresh empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length of a file, if it exists.
    pub fn len(&self, path: &Path) -> Option<usize> {
        self.files.borrow().get(path).map(Vec::len)
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.borrow().is_empty()
    }

    /// Raw bytes of a file, if it exists.
    pub fn raw(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.borrow().get(path).cloned()
    }

    /// Flip one bit of the stored image (at-rest corruption). Returns
    /// false if the file is missing or the offset is out of range.
    pub fn flip_bit(&self, path: &Path, byte: usize, bit: u32) -> bool {
        let mut files = self.files.borrow_mut();
        match files.get_mut(path) {
            Some(data) if byte < data.len() => {
                data[byte] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }

    /// Cut a file at `len` bytes (a crash-truncated tail). Returns false
    /// if the file is missing or already shorter.
    pub fn truncate_at(&self, path: &Path, len: usize) -> bool {
        let mut files = self.files.borrow_mut();
        match files.get_mut(path) {
            Some(data) if data.len() > len => {
                data.truncate(len);
                true
            }
            _ => false,
        }
    }

    /// Paths of all existing files (sorted, for deterministic iteration).
    pub fn paths(&self) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = self.files.borrow().keys().cloned().collect();
        v.sort();
        v
    }
}

impl Backend for MemBackend {
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        Ok(self.files.borrow().get(path).cloned())
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files
            .borrow_mut()
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn write_new(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files.borrow_mut().insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        if let Some(data) = self.files.borrow_mut().get_mut(path) {
            if data.len() as u64 > len {
                data.truncate(len as usize);
            }
        }
        Ok(())
    }

    fn fsync(&mut self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.borrow_mut();
        match files.remove(from) {
            Some(data) => {
                files.insert(to.to_path_buf(), data);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "rename: no such file")),
        }
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.files.borrow_mut().remove(path);
        Ok(())
    }

    fn ensure_dir(&mut self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Let the operation through untouched.
    None,
    /// Persist only `kept` bytes of the data, then fail with
    /// `ErrorKind::WriteZero` (the canonical torn write).
    ShortWrite {
        /// Fraction numerator out of 256 of the data to keep.
        kept_num: u8,
    },
    /// Fail with a transient `ErrorKind::Interrupted` without touching
    /// storage; retries should absorb these.
    Transient,
    /// Fail with a permanent `ErrorKind::Other` without touching storage.
    Permanent,
}

/// Deterministic schedule of faults, one draw per mutating operation.
///
/// Built from a single seed; the `fault_rate` is the probability (out of
/// 256) that any given mutating operation faults at all, and faulting
/// operations pick among short write / transient / permanent.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SplitMix64,
    /// Chance out of 256 that a mutating op faults.
    pub fault_rate: u8,
}

impl FaultPlan {
    /// Schedule with roughly `fault_rate`/256 of mutating ops faulting.
    pub fn new(seed: u64, fault_rate: u8) -> Self {
        Self { rng: SplitMix64::new(seed), fault_rate }
    }

    /// Draw the fault (or `Fault::None`) for the next mutating op.
    pub fn next_fault(&mut self) -> Fault {
        let roll = self.rng.next_u64();
        if (roll & 0xff) as u8 >= self.fault_rate {
            return Fault::None;
        }
        match (roll >> 8) % 4 {
            // Short writes get double weight: torn tails are the
            // interesting crash shape for an append-only log.
            0 | 1 => Fault::ShortWrite { kept_num: (roll >> 16) as u8 },
            2 => Fault::Transient,
            _ => Fault::Permanent,
        }
    }

    /// Draw a uniform value below `bound` (for harness-side choices such
    /// as corruption offsets), consuming from the same stream.
    pub fn pick(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.next_u64() % bound
        }
    }
}

/// Seeded schedule for **bit rot at rest**: between backend operations,
/// flip `flips` bits somewhere in the already-committed `.hmr` log bytes
/// with probability `rot_rate`/256 per operation. Unlike [`FaultPlan`]
/// (which fails the *operation*), rot silently mutates bytes that were
/// successfully fsynced long ago — the corruption class the online
/// scrub exists to catch. SplitMix64-scheduled: the same seed replays
/// the same flips at the same points in the operation stream.
#[derive(Debug, Clone)]
pub struct BitRotPlan {
    rng: SplitMix64,
    /// Chance out of 256 that any given backend op is preceded by rot.
    pub rot_rate: u8,
    /// Bits flipped per rot event.
    pub flips: u32,
}

impl BitRotPlan {
    /// Schedule with roughly `rot_rate`/256 of ops preceded by `flips`
    /// bit flips.
    pub fn new(seed: u64, rot_rate: u8, flips: u32) -> Self {
        Self { rng: SplitMix64::new(seed), rot_rate, flips }
    }
}

/// A [`Backend`] wrapper that injects faults from a [`FaultPlan`] into
/// every mutating operation. Reads are never faulted: the harness models
/// write-path crashes and at-rest corruption, not read errors (the
/// salvage scan handles whatever bytes reads return).
///
/// With [`Self::with_bit_rot`], the wrapper additionally rots committed
/// bytes between operations (reads included — rot does not wait for a
/// write to land), through a shared [`MemBackend`] handle so the flips
/// hit the at-rest image directly.
#[derive(Debug)]
pub struct FaultyIo<B: Backend> {
    inner: B,
    plan: FaultPlan,
    rot: Option<(BitRotPlan, MemBackend)>,
    /// Count of faults actually injected (for harness assertions).
    pub injected: usize,
    /// Count of at-rest bits actually flipped by the bit-rot schedule.
    pub rotted_bits: usize,
}

impl<B: Backend> FaultyIo<B> {
    /// Wrap `inner`, drawing faults from `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self { inner, plan, rot: None, injected: 0, rotted_bits: 0 }
    }

    /// Enable at-rest bit rot, flipping bits of `disk`'s committed
    /// `.hmr` files on `plan`'s schedule. `disk` should be a clone of
    /// the backend under `inner` so the flips land on the same image
    /// the store reads back.
    pub fn with_bit_rot(mut self, plan: BitRotPlan, disk: MemBackend) -> Self {
        self.rot = Some((plan, disk));
        self
    }

    /// Apply scheduled rot before an operation touches the backend.
    fn maybe_rot(&mut self) {
        let Some((plan, disk)) = &mut self.rot else { return };
        let roll = plan.rng.next_u64();
        if (roll & 0xff) as u8 >= plan.rot_rate {
            return;
        }
        for _ in 0..plan.flips {
            // Target only the record logs: rot is about committed
            // sketch state, not lock files or temp staging.
            let targets: Vec<PathBuf> = disk
                .paths()
                .into_iter()
                .filter(|p| p.extension().is_some_and(|e| e == "hmr"))
                .filter(|p| disk.len(p).unwrap_or(0) > 0)
                .collect();
            if targets.is_empty() {
                return;
            }
            let path = &targets[(plan.rng.next_u64() % targets.len() as u64) as usize];
            let len = disk.len(path).unwrap_or(0);
            let byte = (plan.rng.next_u64() % len as u64) as usize;
            let bit = (plan.rng.next_u64() % 8) as u32;
            if disk.flip_bit(path, byte, bit) {
                self.rotted_bits += 1;
            }
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn faulted_write(
        &mut self,
        path: &Path,
        data: &[u8],
        write: impl FnOnce(&mut B, &Path, &[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        match self.plan.next_fault() {
            Fault::None => write(&mut self.inner, path, data),
            Fault::ShortWrite { kept_num } => {
                self.injected += 1;
                let kept = data.len() * usize::from(kept_num) / 256;
                write(&mut self.inner, path, &data[..kept])?;
                Err(io::Error::new(io::ErrorKind::WriteZero, "injected short write"))
            }
            Fault::Transient => {
                self.injected += 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected transient fault"))
            }
            Fault::Permanent => {
                self.injected += 1;
                Err(io::Error::other("injected permanent fault"))
            }
        }
    }

    fn faulted_op(&mut self, op: impl FnOnce(&mut B) -> io::Result<()>) -> io::Result<()> {
        match self.plan.next_fault() {
            Fault::None | Fault::ShortWrite { .. } => op(&mut self.inner),
            Fault::Transient => {
                self.injected += 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected transient fault"))
            }
            Fault::Permanent => {
                self.injected += 1;
                Err(io::Error::other("injected permanent fault"))
            }
        }
    }
}

impl<B: Backend> Backend for FaultyIo<B> {
    fn read(&mut self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        self.maybe_rot();
        self.inner.read(path)
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.maybe_rot();
        self.faulted_write(path, data, B::append)
    }

    fn write_new(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.maybe_rot();
        self.faulted_write(path, data, B::write_new)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        self.maybe_rot();
        self.faulted_op(|b| b.truncate(path, len))
    }

    fn fsync(&mut self, path: &Path) -> io::Result<()> {
        self.maybe_rot();
        self.faulted_op(|b| b.fsync(path))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        // Rename stays atomic: it either happens or errors cleanly.
        // hmh-lint: allow(durability) — fault-injection wrapper forwarding to the inner backend, whose rename carries the fsync contract
        self.faulted_op(|b| b.rename(from, to))
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.faulted_op(|b| b.remove(path))
    }

    fn ensure_dir(&mut self, path: &Path) -> io::Result<()> {
        self.inner.ensure_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_behaves_like_a_filesystem() {
        let mut b = MemBackend::new();
        let p = Path::new("/x/f");
        assert_eq!(b.read(p).unwrap(), None);
        b.append(p, b"ab").unwrap();
        b.append(p, b"cd").unwrap();
        assert_eq!(b.read(p).unwrap().unwrap(), b"abcd");
        b.truncate(p, 3).unwrap();
        assert_eq!(b.read(p).unwrap().unwrap(), b"abc");
        b.write_new(p, b"zz").unwrap();
        assert_eq!(b.read(p).unwrap().unwrap(), b"zz");
        b.rename(p, Path::new("/x/g")).unwrap();
        assert_eq!(b.read(p).unwrap(), None);
        assert_eq!(b.read(Path::new("/x/g")).unwrap().unwrap(), b"zz");
        b.remove(Path::new("/x/g")).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let a = MemBackend::new();
        let mut b = a.clone();
        b.append(Path::new("/f"), b"shared").unwrap();
        assert_eq!(a.len(Path::new("/f")), Some(6));
        assert!(a.flip_bit(Path::new("/f"), 0, 0));
        assert_eq!(b.read(Path::new("/f")).unwrap().unwrap()[0], b's' ^ 1);
        assert!(a.truncate_at(Path::new("/f"), 2));
        assert_eq!(a.len(Path::new("/f")), Some(2));
        assert!(!a.truncate_at(Path::new("/f"), 2), "not shorter: refused");
    }

    #[test]
    fn plan_is_deterministic() {
        let mut a = FaultPlan::new(42, 64);
        let mut b = FaultPlan::new(42, 64);
        for _ in 0..1000 {
            assert_eq!(a.next_fault(), b.next_fault());
        }
        let mut c = FaultPlan::new(43, 64);
        let differs = (0..1000).any(|_| a.next_fault() != c.next_fault());
        assert!(differs, "different seeds give different schedules");
    }

    #[test]
    fn short_write_keeps_a_strict_prefix() {
        // fault_rate 255 ⇒ every op faults; find a short write and check
        // the persisted bytes are a prefix.
        for seed in 0..64 {
            let mem = MemBackend::new();
            let mut io = FaultyIo::new(mem.clone(), FaultPlan::new(seed, 255));
            let p = Path::new("/f");
            let data = b"0123456789abcdef";
            if io.write_new(p, data).is_err() {
                if let Some(stored) = mem.raw(p) {
                    assert!(stored.len() <= data.len());
                    assert_eq!(&data[..stored.len()], &stored[..]);
                }
            }
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mem = MemBackend::new();
        let mut io = FaultyIo::new(mem, FaultPlan::new(7, 0));
        let p = Path::new("/f");
        for _ in 0..100 {
            io.append(p, b"x").unwrap();
        }
        assert_eq!(io.injected, 0);
        assert_eq!(io.inner().len(p), Some(100));
    }
}
